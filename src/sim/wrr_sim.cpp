#include "sim/wrr_sim.h"

#include <cassert>
#include <cmath>

#include "core/lag.h"

namespace pfair {

WrrSimulator::WrrSimulator(TaskSet tasks, WrrConfig config)
    : tasks_(std::move(tasks)),
      config_(config),
      allocated_(tasks_.size(), 0),
      budget_(tasks_.size(), 0),
      carry_(tasks_.size(), Rational(0)) {
  assert(config_.processors >= 1);
  assert(config_.frame >= 1);
  // Budgets are credited by the slot loop at each frame boundary
  // (including t = 0); crediting here too would double the first frame.
}

void WrrSimulator::start_frame() {
  // Deficit-style budgets: each frame credits wt(T) * F quanta exactly;
  // both the fractional part *and* any quanta the rotation failed to
  // serve last frame are carried forward, so no capacity is silently
  // dropped and long-run rates are exact (sum of credits per frame =
  // F * total weight <= F * M).
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    carry_[id] += Rational(budget_[id]);  // unserved quanta from last frame
    carry_[id] += Rational(t.execution * config_.frame, t.period);
    budget_[id] = carry_[id].floor();
    carry_[id] -= Rational(budget_[id]);
  }
}

void WrrSimulator::run_until(Time until) {
  const std::size_t n = tasks_.size();
  while (now_ < until) {
    if (now_ % config_.frame == 0) start_frame();
    if (config_.record_trace)
      trace_.begin_slot(static_cast<std::size_t>(config_.processors));
    // True WRR semantics: the task at the cursor is drained to zero
    // budget before the cursor advances (this consecutive service is
    // what makes WRR's allocation error grow with the frame length —
    // the gap PD2's deadlines close).
    std::size_t skipped = 0;
    while (skipped < n && budget_[cursor_] == 0) {
      cursor_ = (cursor_ + 1) % n;
      ++skipped;
    }
    int served = 0;
    std::size_t inspected = 0;
    std::size_t cur = cursor_;
    while (served < config_.processors && inspected < n) {
      const TaskId id = static_cast<TaskId>(cur);
      if (budget_[id] > 0) {
        --budget_[id];
        ++allocated_[id];
        if (config_.record_trace)
          trace_.record(static_cast<ProcId>(served), id);
        ++served;
      }
      cur = (cur + 1) % n;
      ++inspected;
    }
    idle_quanta_ += static_cast<std::uint64_t>(config_.processors - served);
    ++now_;
    for (TaskId id = 0; id < n; ++id) {
      const Task& t = tasks_[id];
      Rational l = lag(t.execution, t.period, now_, allocated_[id]);
      if (l < Rational(0)) l = -l;
      if (max_abs_lag_ < l) max_abs_lag_ = l;
    }
  }
}

}  // namespace pfair
