#include "sim/wrr_sim.h"

#include <cassert>
#include <cmath>

#include "core/lag.h"

namespace pfair {

WrrSimulator::WrrSimulator(TaskSet tasks, WrrConfig config)
    : tasks_(std::move(tasks)),
      config_(config),
      allocated_(tasks_.size(), 0),
      budget_(tasks_.size(), 0),
      carry_(tasks_.size(), Rational(0)),
      prev_proc_task_(static_cast<std::size_t>(config.processors), kNoTask),
      cur_proc_task_(static_cast<std::size_t>(config.processors), kNoTask),
      prev_sched_(tasks_.size(), false),
      cur_sched_(tasks_.size(), false),
      last_proc_(tasks_.size(), kNoProc) {
  assert(config_.processors >= 1);
  assert(config_.frame >= 1);
  // Budgets are credited by the slot loop at each frame boundary
  // (including t = 0); crediting here too would double the first frame.
}

bool WrrSimulator::admit(const engine::TaskSpec& spec) {
  if (now_ > 0 || !spec.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  const Task t = make_task(spec.resolved_execution(), spec.resolved_period(),
                           TaskKind::kPeriodic, spec.name);
  tasks_.add(t);
  allocated_.push_back(0);
  budget_.push_back(0);
  carry_.push_back(Rational(0));
  prev_sched_.push_back(false);
  cur_sched_.push_back(false);
  last_proc_.push_back(kNoProc);
  ++metrics_.tasks_admitted;
  return true;
}

void WrrSimulator::start_frame() {
  // Deficit-style budgets: each frame credits wt(T) * F quanta exactly;
  // both the fractional part *and* any quanta the rotation failed to
  // serve last frame are carried forward, so no capacity is silently
  // dropped and long-run rates are exact (sum of credits per frame =
  // F * total weight <= F * M).
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    const Task& t = tasks_[id];
    carry_[id] += Rational(budget_[id]);  // unserved quanta from last frame
    carry_[id] += Rational(t.execution * config_.frame, t.period);
    budget_[id] = carry_[id].floor();
    carry_[id] -= Rational(budget_[id]);
  }
}

void WrrSimulator::run_until(Time until) {
  const std::size_t n = tasks_.size();
  while (now_ < until) {
    if (now_ % config_.frame == 0) start_frame();
    obs::emit(bus_, obs::EventKind::kSlotBegin, now_, kNoTask, kNoProc,
              static_cast<double>(config_.processors));
    if (config_.record_trace)
      trace_.begin_slot(static_cast<std::size_t>(config_.processors));
    // True WRR semantics: the task at the cursor is drained to zero
    // budget before the cursor advances (this consecutive service is
    // what makes WRR's allocation error grow with the frame length —
    // the gap PD2's deadlines close).
    std::size_t skipped = 0;
    while (skipped < n && budget_[cursor_] == 0) {
      cursor_ = (cursor_ + 1) % n;
      ++skipped;
    }
    std::fill(cur_sched_.begin(), cur_sched_.end(), false);
    std::fill(cur_proc_task_.begin(), cur_proc_task_.end(), kNoTask);
    int served = 0;
    std::size_t inspected = 0;
    std::size_t cur = cursor_;
    while (served < config_.processors && inspected < n) {
      const TaskId id = static_cast<TaskId>(cur);
      if (budget_[id] > 0) {
        --budget_[id];
        ++allocated_[id];
        const ProcId proc = static_cast<ProcId>(served);
        if (config_.record_trace) trace_.record(proc, id);
        cur_sched_[id] = true;
        cur_proc_task_[proc] = id;
        // Sec.-4 accounting: switch-in on a processor change of task,
        // migration on a task change of processor (plain WRR has no
        // affinity assignment, so both occur freely).
        obs::emit(bus_, obs::EventKind::kDispatch, now_, id, proc,
                  -1.0);  // WRR has no per-quantum release to measure from
        if (prev_proc_task_[proc] != id) {
          ++metrics_.context_switches;
          obs::emit(bus_, obs::EventKind::kContextSwitch, now_, id, proc);
        }
        if (last_proc_[id] != kNoProc && last_proc_[id] != proc) {
          ++metrics_.migrations;
          obs::emit(bus_, obs::EventKind::kMigration, now_, id, proc,
                    static_cast<double>(last_proc_[id]));
        }
        last_proc_[id] = proc;
        ++served;
      }
      cur = (cur + 1) % n;
      ++inspected;
    }
    // A task served in the previous slot with budget left that was not
    // served now was preempted by the rotation.
    for (TaskId id = 0; id < n; ++id) {
      if (prev_sched_[id] && !cur_sched_[id] && budget_[id] > 0) {
        ++metrics_.preemptions;
        obs::emit(bus_, obs::EventKind::kPreemption, now_, id, kNoProc,
                  -1.0);  // rotation preemptions are not attributable
      }
    }
    std::swap(prev_sched_, cur_sched_);
    std::swap(prev_proc_task_, cur_proc_task_);
    ++metrics_.slots;
    ++metrics_.scheduler_invocations;
    ++metrics_.scheduling_points;
    obs::emit(bus_, obs::EventKind::kSchedInvoke, now_);
    metrics_.busy_quanta += static_cast<std::uint64_t>(served);
    metrics_.idle_quanta += static_cast<std::uint64_t>(config_.processors - served);
    obs::emit(bus_, obs::EventKind::kSlotEnd, now_, kNoTask, kNoProc,
              static_cast<double>(served));
    ++now_;
    for (TaskId id = 0; id < n; ++id) {
      const Task& t = tasks_[id];
      Rational l = lag(t.execution, t.period, now_, allocated_[id]);
      if (l < Rational(0)) l = -l;
      if (max_abs_lag_ < l) max_abs_lag_ = l;
      if (bus_ != nullptr && config_.lag_sample_every > 0 &&
          now_ % config_.lag_sample_every == 0) {
        bus_->emit(obs::EventKind::kLagSample, now_, id, kNoProc,
                   lag(t.execution, t.period, now_, allocated_[id]).to_double());
      }
    }
  }
}

}  // namespace pfair
