// RUN — Reduction to UNiprocessor [Regnier, Lima, Massa, Levin, Brandt,
// RTSS'11] — the second "successor" optimal scheduler (after BF) that
// beats per-quantum Pfair on scheduling-decision economy.
//
// Offline, the task set (rates r_i = e_i/p_i, sum <= M) is *reduced*:
//
//   1. pad the slack M - sum r_i with idle leaves — whole units shrink
//      the effective processor count, the fractional remainder becomes
//      one idle leaf (period = the largest task period, so it
//      introduces no boundary instants of its own);
//   2. PACK leaves first-fit-decreasing into servers of rate <= 1;
//      rate-exactly-1 packs become roots;
//   3. DUAL each remaining pack sigma into a server sigma* of rate
//      1 - rate(sigma); the duals are the items of the next level.
//
// Each level's item rates sum to an integer (packing preserves the sum;
// dualizing n packs of total rate R yields n - R), so a single non-unit
// leftover is impossible and the reduction terminates in O(log n)
// levels with every chain ending at a unit root.
//
// Online, at each event instant the selection is recomputed top-down:
// roots always execute; an executing pack EDF-picks the one client with
// remaining work/budget (earliest deadline, tie -> lower node id); a
// dual executes iff picked, and — the inversion at the heart of RUN — a
// pack executes iff its dual does NOT, *unconditionally* (a dual whose
// parent pack is idle does not execute, so its primal does).  At most M
// leaves are marked executing at any instant (asserted).
//
// Time is kept in integer "fine ticks" of 1/L slots, L = lcm of all
// admitted periods: every server rate is then an integral number of
// ticks per slot, so dual budgets (1 - rate) * (interval between
// consecutive deadlines of the primal subtree's leaves) and leaf job
// work e * L are exact int64s — no floating point anywhere, and the
// same admitted set always reproduces byte-identical segment logs.
// admit() maintains the running lcm and rejects tasks that would push
// it past kMaxLcm (or utilization past M): RUN's admission is
// capacity-checked, a documented contrast with PD2's accept-and-miss.
//
// Preemptions in a RUN schedule land at server boundaries rather than
// quantum boundaries, so the per-slot ScheduleTrace/verify_schedule
// machinery does not apply; the simulator instead logs exact service
// segments per task and verify_run_segments() checks, independently of
// the scheduler's own bookkeeping, that every job receives exactly
// e * L ticks inside its period window, that segments never overlap for
// one task, and that parallelism never exceeds M.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/task.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"

namespace pfair {

struct RunConfig {
  int processors = 1;
  bool record_segments = true;  ///< keep the per-task service segment log
};

/// One maximal interval of service: task `task` ran continuously over
/// [start, end) in fine ticks (1 slot = ticks_per_slot() ticks).
struct RunSegment {
  TaskId task = kNoTask;
  std::int64_t start = 0;
  std::int64_t end = 0;

  friend bool operator==(const RunSegment& a, const RunSegment& b) {
    return a.task == b.task && a.start == b.start && a.end == b.end;
  }
};

struct RunVerifyResult {
  bool ok = true;
  std::size_t violations = 0;
  std::string first_violation;

  void fail(std::string what) {
    ++violations;
    if (ok) first_violation = std::move(what);
    ok = false;
  }
};

/// Independent segment-log verification (the RUN analogue of
/// verify_schedule): for every task and every job window
/// [k*p, (k+1)*p) * ticks_per_slot fully inside the horizon, the summed
/// service must be exactly e * ticks_per_slot; per-task segments must be
/// sorted and non-overlapping; global parallelism must stay <= processors.
[[nodiscard]] RunVerifyResult verify_run_segments(
    const std::vector<RunSegment>& segments, const TaskSet& tasks,
    std::int64_t ticks_per_slot, Time horizon, int processors);

class RunSimulator : public engine::Simulator {
 public:
  explicit RunSimulator(RunConfig config = {});

  /// Capacity-checked, offline-only admission: rejects once the
  /// simulation has started, when utilization would exceed the
  /// processor count, or when the running period lcm would exceed
  /// kMaxLcm.  Dynamic join/leave/reweight inherit the rejecting
  /// defaults (can_dynamic() = false): refusals are well-defined.
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] Time now() const noexcept override;
  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

  [[nodiscard]] const TaskSet& tasks() const noexcept { return tasks_; }
  [[nodiscard]] const std::vector<RunSegment>& segments() const noexcept {
    return segments_;
  }
  /// Fine ticks per slot (= lcm of admitted periods); valid after the
  /// first run_until.
  [[nodiscard]] std::int64_t ticks_per_slot() const noexcept { return ticks_; }
  /// Reduction depth (number of dual levels); valid after the first
  /// run_until.  0 means every pack was already a unit root.
  [[nodiscard]] int reduction_levels() const noexcept { return levels_; }

  /// Largest period lcm admit() accepts.  Chosen so that every product
  /// formed by the simulator (tick times horizon * lcm, budgets
  /// rate_num * interval <= lcm * max period) stays inside int64.
  static constexpr std::int64_t kMaxLcm = 1'000'000'000;

 private:
  struct Node {
    enum class Kind : std::uint8_t { kLeaf, kPack, kDual };
    Kind kind = Kind::kLeaf;
    std::int64_t rate_num = 0;  ///< rate = rate_num / ticks_
    // Tree links (indices into nodes_; kNoNode = absent).
    std::uint32_t primal = 0xffffffff;        ///< dual -> its pack
    std::vector<std::uint32_t> clients;       ///< pack -> children
    // Leaf state.
    TaskId task = kNoTask;          ///< kNoTask = idle leaf
    Time period = 0;                ///< real slots
    std::int64_t job_work = 0;      ///< e * ticks_ (per job)
    std::int64_t work = 0;          ///< remaining work of current job, ticks
    std::int64_t release_tick = 0;  ///< current job's release, ticks
    // Dual state.
    std::vector<Time> periods;      ///< distinct leaf periods of the subtree
    std::int64_t budget = 0;        ///< remaining dual budget, ticks
    // Shared EDF key: current deadline in real slots (leaves: job
    // deadline; duals: next deadline of the primal subtree).
    Time deadline = 0;
    bool executing = false;
  };

  void build_tree();
  void process_boundary(Time t_real);
  /// Recomputes the executing marks top-down; fills executing_leaves_.
  void select();
  void mark_pack(std::uint32_t idx, bool exec);
  void assign_processors(Time event_real);
  [[nodiscard]] Time next_boundary_after(Time t_real) const;

  TaskSet tasks_;
  RunConfig config_;
  std::int64_t ticks_ = 1;  ///< running lcm of admitted periods
  bool built_ = false;
  int levels_ = 0;

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> roots_;
  std::vector<std::uint32_t> leaves_;  ///< leaf node index per creation order
  std::vector<std::uint32_t> duals_;
  std::vector<Time> distinct_periods_;

  std::int64_t now_tick_ = 0;
  Time pending_boundary_ = 0;  ///< next boundary to process, real slots

  // Processor-assignment scratch (Sec.-4 accounting across segments).
  std::vector<std::uint32_t> executing_leaves_;   ///< node indices
  std::vector<std::uint32_t> prev_executing_;
  std::vector<std::uint32_t> proc_owner_;         ///< proc -> leaf node or kNoNode
  std::vector<ProcId> leaf_proc_;                 ///< node index -> last proc run on

  std::vector<RunSegment> segments_;
  std::int64_t busy_ticks_ = 0;

  engine::Metrics metrics_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
};

}  // namespace pfair
