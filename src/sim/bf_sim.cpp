#include "sim/bf_sim.h"

#include <algorithm>
#include <cassert>

#include "core/windows.h"
#include "util/math.h"

namespace pfair {

namespace {

/// PD2 urgency of the pending subtask (1-based index `s`) of a task,
/// aggregated to the interval level: earlier pseudo-deadline first,
/// then b-bit 1 before 0, then larger group deadline, then lower id.
/// The same comparison chain the per-quantum PD2 scheduler uses — BF
/// only changes *when* it is consulted, not *what* it prefers.
struct OptionalRank {
  Time deadline = 0;
  int b = 0;
  Time group = 0;
  TaskId id = 0;

  [[nodiscard]] bool before(const OptionalRank& o) const noexcept {
    if (deadline != o.deadline) return deadline < o.deadline;
    if (b != o.b) return b > o.b;
    if (group != o.group) return group > o.group;
    return id < o.id;
  }
};

OptionalRank rank_of(TaskId id, const Task& t, SubtaskIndex s) {
  OptionalRank r;
  r.deadline = subtask_deadline(t.execution, t.period, s);
  r.b = b_bit(t.execution, t.period, s);
  r.group = group_deadline(t.execution, t.period, s);
  r.id = id;
  return r;
}

}  // namespace

BfSimulator::BfSimulator(TaskSet tasks, BfConfig config)
    : tasks_(std::move(tasks)),
      config_(config),
      allocated_(tasks_.size(), 0),
      prev_proc_task_(static_cast<std::size_t>(config.processors), kNoTask),
      cur_proc_task_(static_cast<std::size_t>(config.processors), kNoTask),
      prev_sched_(tasks_.size(), false),
      cur_sched_(tasks_.size(), false),
      last_proc_(tasks_.size(), kNoProc),
      quota_(tasks_.size(), 0) {
  assert(config_.processors >= 1);
}

bool BfSimulator::admit(const engine::TaskSpec& spec) {
  if (now_ > 0 || !spec.valid()) {
    ++metrics_.tasks_rejected;
    return false;
  }
  const Task t = make_task(spec.resolved_execution(), spec.resolved_period(),
                           TaskKind::kPeriodic, spec.name);
  tasks_.add(t);
  allocated_.push_back(0);
  prev_sched_.push_back(false);
  cur_sched_.push_back(false);
  last_proc_.push_back(kNoProc);
  quota_.push_back(0);
  ++metrics_.tasks_admitted;
  return true;
}

void BfSimulator::plan_interval() {
  const Time b = now_;
  const std::size_t n = tasks_.size();
  const std::int64_t m_procs = config_.processors;

  // Next boundary: the smallest period multiple strictly after b.
  Time b_next = -1;
  for (TaskId id = 0; id < n; ++id) {
    const Time next = (b / tasks_[id].period + 1) * tasks_[id].period;
    if (b_next < 0 || next < b_next) b_next = next;
  }
  assert(b_next > b);
  interval_begin_ = b;
  interval_end_ = b_next;
  const Time L = b_next - b;

  // Period boundaries of individual tasks: job deadlines are checked
  // and the next jobs released exactly here — every job deadline is a
  // boundary, so no miss can hide between decisions.
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = tasks_[id];
    if (b % t.period != 0) continue;
    if (b > 0) {
      const std::int64_t k = b / t.period;  // job k's deadline is b
      if (allocated_[id] < checked_mul(k, t.execution)) {
        metrics_.record_miss(b);
        obs::emit(bus_, obs::EventKind::kDeadlineMiss, b, id);
      }
    }
    ++metrics_.jobs_released;
    obs::emit(bus_, obs::EventKind::kJobRelease, b, id, kNoProc,
              static_cast<double>(b + t.period));
  }

  // Mandatory units: m_i = max(0, floor(F_i)) with F_i the fluid target
  // wt * b_next - allocated.  All per-task arithmetic stays over the
  // task's own denominator p_i, so nothing ever needs a common period
  // lcm.  F_i < 0 means the task holds its ceiling allocation and a
  // short interval ends before the fluid schedule catches up: it gets
  // (and may take) nothing.
  std::int64_t mandatory_total = 0;
  eligible_.clear();
  for (TaskId id = 0; id < n; ++id) {
    const Task& t = tasks_[id];
    const std::int64_t f_num =
        checked_mul(t.execution, b_next) - checked_mul(allocated_[id], t.period);
    std::int64_t m = std::max<std::int64_t>(0, floor_div(f_num, t.period));
    if (m > L) m = L;  // defensive: only reachable after a prior overload
    quota_[id] = m;
    mandatory_total += m;
    if (f_num > 0 && f_num % t.period != 0 && m < L) eligible_.push_back(id);
  }

  const std::int64_t capacity = checked_mul(m_procs, L);
  if (mandatory_total > capacity) {
    // Overloaded interval (sum wt > M, or an earlier overload's debt):
    // serve mandatory units in PD2 urgency order until capacity runs
    // out; the shortfall surfaces as boundary deadline misses above.
    std::vector<TaskId> order;
    for (TaskId id = 0; id < n; ++id)
      if (quota_[id] > 0) order.push_back(id);
    std::sort(order.begin(), order.end(), [&](TaskId a, TaskId bb) {
      return rank_of(a, tasks_[a], allocated_[a] + 1)
          .before(rank_of(bb, tasks_[bb], allocated_[bb] + 1));
    });
    std::int64_t left = capacity;
    std::vector<std::int64_t> want(n, 0);
    for (TaskId id = 0; id < n; ++id) std::swap(want[id], quota_[id]);
    for (const TaskId id : order) {
      const std::int64_t take = std::min(want[id], left);
      quota_[id] = take;
      left -= take;
    }
  } else {
    // Optional units: hand the RC = M*L - sum m_i leftover quanta to
    // eligible tasks by the urgency of the first subtask *after* the
    // mandatory batch (the one the extra quantum would serve).
    std::int64_t rc = capacity - mandatory_total;
    if (rc > 0 && !eligible_.empty()) {
      std::sort(eligible_.begin(), eligible_.end(), [&](TaskId a, TaskId bb) {
        return rank_of(a, tasks_[a], allocated_[a] + quota_[a] + 1)
            .before(rank_of(bb, tasks_[bb], allocated_[bb] + quota_[bb] + 1));
      });
      for (const TaskId id : eligible_) {
        if (rc == 0) break;
        ++quota_[id];
        --rc;
      }
    }
  }

  // McNaughton wrap-around layout: tasks in id order fill processor 0
  // slot by slot, overflow wraps onto the next processor.  Each task's
  // quanta stay contiguous (split across at most two processors), so an
  // interval causes at most M-1 mid-job splits — the decision-point
  // economy BF exists for.
  layout_.assign(static_cast<std::size_t>(L),
                 std::vector<TaskId>(static_cast<std::size_t>(m_procs), kNoTask));
  std::size_t proc = 0;
  std::size_t offset = 0;
  for (TaskId id = 0; id < n; ++id) {
    for (std::int64_t q = 0; q < quota_[id]; ++q) {
      assert(proc < static_cast<std::size_t>(m_procs));
      layout_[offset][proc] = id;
      if (++offset == static_cast<std::size_t>(L)) {
        offset = 0;
        ++proc;
      }
    }
  }

  ++metrics_.scheduler_invocations;
  ++metrics_.scheduling_points;
  obs::emit(bus_, obs::EventKind::kSchedInvoke, b);
}

void BfSimulator::emit_slot() {
  const Time s = now_;
  const std::size_t m = static_cast<std::size_t>(config_.processors);
  const std::vector<TaskId>& row = layout_[static_cast<std::size_t>(s - interval_begin_)];

  obs::emit(bus_, obs::EventKind::kSlotBegin, s, kNoTask, kNoProc,
            static_cast<double>(config_.processors));
  if (config_.record_trace) trace_.begin_slot(m);
  std::fill(cur_sched_.begin(), cur_sched_.end(), false);
  std::fill(cur_proc_task_.begin(), cur_proc_task_.end(), kNoTask);
  int served = 0;
  for (std::size_t proc = 0; proc < m; ++proc) {
    const TaskId id = row[proc];
    if (id == kNoTask) continue;
    const Task& t = tasks_[id];
    if (config_.record_trace) trace_.record(static_cast<ProcId>(proc), id);
    cur_sched_[id] = true;
    cur_proc_task_[proc] = id;
    ++allocated_[id];
    ++served;
    obs::emit(bus_, obs::EventKind::kDispatch, s, id, static_cast<ProcId>(proc),
              -1.0);  // interval batching has no per-quantum release to measure from
    if (prev_proc_task_[proc] != id) {
      ++metrics_.context_switches;
      obs::emit(bus_, obs::EventKind::kContextSwitch, s, id, static_cast<ProcId>(proc));
    }
    if (last_proc_[id] != kNoProc && last_proc_[id] != static_cast<ProcId>(proc)) {
      ++metrics_.migrations;
      obs::emit(bus_, obs::EventKind::kMigration, s, id, static_cast<ProcId>(proc),
                static_cast<double>(last_proc_[id]));
    }
    last_proc_[id] = static_cast<ProcId>(proc);
    if (allocated_[id] % t.execution == 0) {
      // Job k = allocated/e just finished; released at (k-1)*p.
      const std::int64_t k = allocated_[id] / t.execution;
      const double response =
          static_cast<double>(s + 1 - checked_mul(k - 1, t.period));
      ++metrics_.jobs_completed;
      metrics_.response_time.add(response);
      obs::emit(bus_, obs::EventKind::kJobComplete, s, id, static_cast<ProcId>(proc),
                response);
    }
  }
  // Sec.-4 preemption rule: scheduled in s-1, current job incomplete,
  // not scheduled in s.
  for (TaskId id = 0; id < tasks_.size(); ++id) {
    if (prev_sched_[id] && !cur_sched_[id] && allocated_[id] % tasks_[id].execution != 0) {
      ++metrics_.preemptions;
      obs::emit(bus_, obs::EventKind::kPreemption, s, id, kNoProc, -1.0);
    }
  }
  std::swap(prev_sched_, cur_sched_);
  std::swap(prev_proc_task_, cur_proc_task_);
  ++metrics_.slots;
  metrics_.busy_quanta += static_cast<std::uint64_t>(served);
  metrics_.idle_quanta += static_cast<std::uint64_t>(config_.processors - served);
  obs::emit(bus_, obs::EventKind::kSlotEnd, s, kNoTask, kNoProc,
            static_cast<double>(served));
  ++now_;
}

void BfSimulator::run_until(Time until) {
  while (now_ < until) {
    if (tasks_.empty()) {
      // No tasks, no boundaries: the whole range is idle.
      const Time count = until - now_;
      const std::size_t m = static_cast<std::size_t>(config_.processors);
      if (config_.record_trace) trace_.idle_slots(m, static_cast<std::size_t>(count));
      metrics_.slots += static_cast<std::uint64_t>(count);
      metrics_.idle_quanta += static_cast<std::uint64_t>(count) * m;
      now_ = until;
      break;
    }
    if (now_ == interval_end_) plan_interval();
    const Time stop = std::min(until, interval_end_);
    while (now_ < stop) emit_slot();
  }
}

}  // namespace pfair
