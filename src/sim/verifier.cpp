#include "sim/verifier.h"

#include <sstream>

#include "core/lag.h"
#include "core/windows.h"

namespace pfair {

namespace {

/// ±3 slots of the raw trace around the failing slot, one row per task,
/// with a caret under the slot in question — enough context to see *why*
/// the property failed without re-running the simulation.  For window
/// violations the excerpt is widened to cover the violated window [r, d)
/// and a '~' ruler marks it: a before-release violation's window lies
/// strictly *after* the failing slot, so a symmetric ±3 excerpt would
/// show no window at all.  The total width is capped; the failing slot
/// always stays visible.
std::string render_excerpt(const ScheduleTrace& trace, std::size_t n_tasks,
                           std::size_t t, Time win_r = -1, Time win_d = -1) {
  constexpr std::size_t kContext = 3;
  constexpr std::size_t kMaxWidth = 32;
  std::size_t lo = t >= kContext ? t - kContext : 0;
  std::size_t hi = std::min(trace.size(), t + kContext + 1);
  const bool have_window = win_r >= 0 && win_d > win_r;
  if (have_window) {
    lo = std::min(lo, static_cast<std::size_t>(win_r));
    hi = std::max(hi, std::min(trace.size(), static_cast<std::size_t>(win_d)));
    if (hi - lo > kMaxWidth) {  // trim the side away from the caret
      if (t - lo < kMaxWidth) {
        hi = lo + kMaxWidth;
      } else {
        lo = hi - kMaxWidth;
      }
    }
  }
  std::size_t width = 1;
  for (std::size_t v = n_tasks > 0 ? n_tasks - 1 : 0; v >= 10; v /= 10) ++width;
  std::ostringstream os;
  os << "\n  trace slots [" << lo << ", " << hi << "):\n";
  for (TaskId id = 0; id < n_tasks; ++id) {
    std::string label("T");
    label += std::to_string(id);
    os << "    " << label << std::string(width + 1 - label.size() + 1, ' ') << "|";
    for (std::size_t s = lo; s < hi; ++s) os << (trace.scheduled(s, id) ? 'X' : '.');
    os << "|\n";
  }
  os << "    " << std::string(width + 3, ' ') << std::string(t - lo, ' ')
     << "^ slot " << t;
  if (have_window) {
    const std::size_t r = std::max(lo, static_cast<std::size_t>(win_r));
    const std::size_t d = std::min(hi, static_cast<std::size_t>(win_d));
    if (r < d) {
      os << "\n    " << std::string(width + 3, ' ') << std::string(r - lo, ' ')
         << std::string(d - r, '~') << " window [" << win_r << ", " << win_d << ")";
    }
  }
  return os.str();
}

std::string describe(const char* what, std::size_t t, TaskId task) {
  std::ostringstream os;
  os << what << " (slot " << t << ", task " << task << ")";
  return os.str();
}

}  // namespace

VerifyResult verify_schedule(const ScheduleTrace& trace, const TaskSet& tasks,
                             const VerifyOptions& options) {
  VerifyResult res;
  const std::size_t n = tasks.size();
  std::vector<std::int64_t> allocated(n, 0);

  for (std::size_t t = 0; t < trace.size(); ++t) {
    const TraceSlot& slot = trace[t];
    if (slot.proc_to_task.size() > static_cast<std::size_t>(options.processors)) {
      res.fail(describe("more processors used than configured", t, kNoTask));
    }
    // Structural: each task at most once per slot.
    std::vector<int> seen(n, 0);
    for (const TaskId id : slot.proc_to_task) {
      if (id == kNoTask) continue;
      if (id >= n) {
        res.fail(describe("unknown task id in trace", t, id));
        continue;
      }
      if (++seen[id] > 1)
        res.fail(describe("task on two processors in one slot", t, id) +
                 render_excerpt(trace, n, t));
    }

    // Window property: the k-th quantum of T must lie in w(T_k).
    for (TaskId id = 0; id < n; ++id) {
      if (seen[id] == 0) continue;
      const Task& task = tasks[id];
      const SubtaskIndex k = allocated[id] + 1;
      if (options.check_windows) {
        const Time r = subtask_release(task.execution, task.period, k);
        const Time d = subtask_deadline(task.execution, task.period, k);
        const auto window = [&] {
          std::ostringstream os;
          os << ", subtask " << k << ", window [" << r << ", " << d << ")";
          return os.str();
        };
        if (static_cast<Time>(t) < r)
          res.fail(describe("subtask scheduled before its pseudo-release", t, id) +
                   window() + render_excerpt(trace, n, t, r, d));
        if (static_cast<Time>(t) >= d)
          res.fail(describe("subtask scheduled at/after its pseudo-deadline", t, id) +
                   window() + render_excerpt(trace, n, t, r, d));
      }
      ++allocated[id];
    }

    // Lag bounds / boundary exactness at time t+1.
    for (TaskId id = 0; id < n; ++id) {
      const Task& task = tasks[id];
      if (options.check_job_boundaries &&
          (static_cast<Time>(t) + 1) % task.period == 0) {
        const std::int64_t k = (static_cast<Time>(t) + 1) / task.period;
        const std::int64_t expect = k * task.execution;
        if (allocated[id] != expect) {
          std::ostringstream os;
          os << ", boundary " << t + 1 << ": allocated " << allocated[id]
             << ", fluid requires exactly " << expect;
          res.fail(describe("allocation not exact at period boundary", t, id) +
                   os.str() + render_excerpt(trace, n, t));
        }
      }
      if (options.check_lags) {
        if (!lag_within_pfair_bounds(task.execution, task.period, static_cast<Time>(t) + 1,
                                     allocated[id])) {
          std::ostringstream os;
          os << ", lag(" << t + 1 << ") = "
             << lag(task.execution, task.period, static_cast<Time>(t) + 1, allocated[id])
                    .to_double();
          res.fail(describe("lag out of (-1, 1)", t, id) + os.str() +
                   render_excerpt(trace, n, t));
        }
      } else if (options.check_upper_lag_only) {
        if (!lag_within_erfair_bounds(task.execution, task.period, static_cast<Time>(t) + 1,
                                      allocated[id])) {
          std::ostringstream os;
          os << ", lag(" << t + 1 << ") = "
             << lag(task.execution, task.period, static_cast<Time>(t) + 1, allocated[id])
                    .to_double();
          res.fail(describe("lag reached +1 (deadline miss)", t, id) + os.str() +
                   render_excerpt(trace, n, t));
        }
      }
    }
  }
  return res;
}

}  // namespace pfair
