#include "sim/verifier.h"

#include <sstream>

#include "core/lag.h"
#include "core/windows.h"

namespace pfair {

namespace {

std::string describe(const char* what, std::size_t t, TaskId task) {
  std::ostringstream os;
  os << what << " (slot " << t << ", task " << task << ")";
  return os.str();
}

}  // namespace

VerifyResult verify_schedule(const ScheduleTrace& trace, const TaskSet& tasks,
                             const VerifyOptions& options) {
  VerifyResult res;
  const std::size_t n = tasks.size();
  std::vector<std::int64_t> allocated(n, 0);

  for (std::size_t t = 0; t < trace.size(); ++t) {
    const TraceSlot& slot = trace[t];
    if (slot.proc_to_task.size() > static_cast<std::size_t>(options.processors)) {
      res.fail(describe("more processors used than configured", t, kNoTask));
    }
    // Structural: each task at most once per slot.
    std::vector<int> seen(n, 0);
    for (const TaskId id : slot.proc_to_task) {
      if (id == kNoTask) continue;
      if (id >= n) {
        res.fail(describe("unknown task id in trace", t, id));
        continue;
      }
      if (++seen[id] > 1) res.fail(describe("task on two processors in one slot", t, id));
    }

    // Window property: the k-th quantum of T must lie in w(T_k).
    for (TaskId id = 0; id < n; ++id) {
      if (seen[id] == 0) continue;
      const Task& task = tasks[id];
      const SubtaskIndex k = allocated[id] + 1;
      if (options.check_windows) {
        const Time r = subtask_release(task.execution, task.period, k);
        const Time d = subtask_deadline(task.execution, task.period, k);
        if (static_cast<Time>(t) < r)
          res.fail(describe("subtask scheduled before its pseudo-release", t, id));
        if (static_cast<Time>(t) >= d)
          res.fail(describe("subtask scheduled at/after its pseudo-deadline", t, id));
      }
      ++allocated[id];
    }

    // Lag bounds at time t+1.
    for (TaskId id = 0; id < n; ++id) {
      const Task& task = tasks[id];
      if (options.check_lags) {
        if (!lag_within_pfair_bounds(task.execution, task.period, static_cast<Time>(t) + 1,
                                     allocated[id]))
          res.fail(describe("lag out of (-1, 1)", t, id));
      } else if (options.check_upper_lag_only) {
        if (!lag_within_erfair_bounds(task.execution, task.period, static_cast<Time>(t) + 1,
                                      allocated[id]))
          res.fail(describe("lag reached +1 (deadline miss)", t, id));
      }
    }
  }
  return res;
}

}  // namespace pfair
