// Counters collected by the simulators.
//
// Definitions follow the paper's accounting (Sec. 4):
//   - preemption: a task was scheduled in slot t-1, its current job is
//     incomplete, and it is not scheduled in slot t (whether it resumes
//     on the same or another processor — the cache analysis assumes a
//     cold cache either way);
//   - migration: a task runs in slot t on a different processor than its
//     previous quantum;
//   - context switch: a processor runs a different task in slot t than
//     in slot t-1 (switch-in accounting).
#pragma once

#include <cstdint>

#include "util/stats.h"
#include "util/types.h"

namespace pfair {

struct SimMetrics {
  std::uint64_t slots = 0;              ///< slots simulated
  std::uint64_t busy_quanta = 0;        ///< processor-quanta allocated
  std::uint64_t idle_quanta = 0;        ///< processor-quanta left idle
  std::uint64_t jobs_completed = 0;     ///< per-job accounting (periodic)
  std::uint64_t deadline_misses = 0;    ///< subtask deadline misses
  std::uint64_t component_misses = 0;   ///< supertask component job misses
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t component_switches = 0;  ///< supertask-internal EDF switches
  std::uint64_t scheduler_invocations = 0;
  std::uint64_t lag_violations = 0;     ///< only when lag checking enabled
  Time first_miss_time = -1;            ///< -1 if no miss observed
  double sched_ns_total = 0.0;          ///< only when overhead timing enabled
  RunningStats response_time;           ///< per-job response times (slots)

  [[nodiscard]] double avg_sched_ns() const noexcept {
    return scheduler_invocations > 0
               ? sched_ns_total / static_cast<double>(scheduler_invocations)
               : 0.0;
  }
  [[nodiscard]] double utilization() const noexcept {
    const std::uint64_t cap = busy_quanta + idle_quanta;
    return cap > 0 ? static_cast<double>(busy_quanta) / static_cast<double>(cap) : 0.0;
  }
};

}  // namespace pfair
