// Weighted round-robin (WRR) baseline.
//
// The paper notes that "PD2 can be thought of as a deadline-based
// variant of the weighted round-robin algorithm" (Sec. 4).  This module
// provides the plain WRR that comparison refers to: time is divided
// into fixed frames of F quanta; in each frame task T is budgeted
// round(wt(T) * F) quanta; the M processors serve tasks in a fixed
// cyclic order, draining budgets.  WRR preserves long-run rates but —
// unlike PD2 — provides no per-subtask deadlines: its allocation error
// (lag) grows with the frame length, which is exactly the gap the Pfair
// window machinery closes.  Used by tests and the ablation bench to
// quantify that gap.
#pragma once

#include <vector>

#include "core/task.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "obs/bus.h"
#include "sim/trace.h"

namespace pfair {

struct WrrConfig {
  int processors = 1;
  Time frame = 16;  ///< F: quanta per round-robin frame
  bool record_trace = true;
  Time lag_sample_every = 0;  ///< emit an obs kLagSample per task every N
                              ///< slots (0 = off; needs an attached observer)
};

class WrrSimulator : public engine::Simulator {
 public:
  WrrSimulator(TaskSet tasks, WrrConfig config);

  /// Admission is only possible before the first slot runs (budgets are
  /// credited per frame; a mid-run joiner would skew the lag bookkeeping).
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  void run_until(Time until) override;

  [[nodiscard]] Time now() const noexcept override { return now_; }
  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }
  [[nodiscard]] const ScheduleTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] std::int64_t allocated(TaskId id) const { return allocated_[id]; }

  /// Largest |lag| observed over the run (exact rational).
  [[nodiscard]] Rational max_abs_lag() const noexcept { return max_abs_lag_; }

  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }

 private:
  void start_frame();

  TaskSet tasks_;
  WrrConfig config_;
  Time now_ = 0;
  std::vector<std::int64_t> allocated_;
  std::vector<std::int64_t> budget_;  ///< remaining quanta this frame
  std::vector<Rational> carry_;       ///< fractional credit across frames
  std::size_t cursor_ = 0;            ///< cyclic service pointer
  ScheduleTrace trace_;
  Rational max_abs_lag_{0};
  engine::Metrics metrics_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
  // Scratch for the Sec.-4 event accounting (preemptions / context
  // switches / migrations), reused every slot.
  std::vector<TaskId> prev_proc_task_;  ///< proc -> task of previous slot
  std::vector<TaskId> cur_proc_task_;
  std::vector<bool> prev_sched_;        ///< task scheduled in previous slot
  std::vector<bool> cur_sched_;
  std::vector<ProcId> last_proc_;       ///< task -> processor of last quantum
};

}  // namespace pfair
