// Structure-of-arrays runtime state for the pending subtask of every
// task in a PfairSimulator.
//
// The simulator keeps exactly one pending subtask per task (the next
// one to schedule).  The AoS layout stored that subtask's hot state
// inside TaskRuntime — a ~200-byte struct — so the per-slot questions
// ("which subtasks are eligible at t?", "which of those missed?",
// "when does the next one become eligible?") each walked a strided
// pointer chase touching one cache line per task.  This SoA pulls the
// per-slot-scanned fields into contiguous lanes:
//
//   lane          type       scanned by
//   -----------   --------   -------------------------------------------
//   eligible_at   Time       eligibility sweep (simd::collect_le),
//                            idle fast-forward (simd::min_value)
//   deadline      Time       miss sweep over the eligible candidates
//   key_hi/lo     uint64     top-M selection (packed-key compares)
//   key_alg       uint8      packed-compare applicability check
//   miss_counted  uint8      at-most-once miss accounting
//
// plus cold lanes (ref, cursor, ready_handle, calendar_when) that are
// touched once per enqueue/advance rather than once per slot.  The
// lanes are the single source of truth in both kernels: the legacy
// heap+wheel kernel reads/writes them through the same enqueue/remove
// paths, so the SoA sweep kernel and the legacy kernel run against
// literally the same state and can be differentially compared cell by
// cell (tests/sim/hotpath_diff_test.cpp).
//
// Parked convention: a task with no pending subtask (inactive, or
// departing) has eligible_at = deadline = kNeverEligible, so the
// eligibility and miss sweeps skip it without a separate "active" lane
// and the fast-forward minimum naturally ignores it.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/priority.h"
#include "core/windows.h"
#include "util/binary_heap.h"
#include "util/types.h"

namespace pfair {

/// Lane value meaning "no pending subtask": larger than every reachable
/// slot, so parked lanes never pass a <= t sweep and never win a min.
inline constexpr Time kNeverEligible = std::numeric_limits<Time>::max();

struct SubtaskSoA {
  // Hot lanes (swept every slot by the SoA kernel).
  std::vector<Time> eligible_at;
  std::vector<Time> deadline;
  std::vector<std::uint64_t> key_hi;
  std::vector<std::uint64_t> key_lo;
  std::vector<std::uint8_t> key_alg;
  std::vector<std::uint8_t> miss_counted;

  // Cold lanes (touched per enqueue/advance, not per slot).
  std::vector<SubtaskRef> ref;        ///< prebuilt ref of the pending subtask
  std::vector<WindowCursor> cursor;   ///< windows of that subtask, O(1) advance
  std::vector<HeapHandle> ready_handle;  ///< legacy kernel: ready-queue handle
  std::vector<Time> calendar_when;       ///< legacy kernel: release-wheel slot (-1 = none)

  [[nodiscard]] std::size_t size() const noexcept { return eligible_at.size(); }

  /// Appends one parked entry per new task id up to `n`.
  void grow(std::size_t n) {
    while (size() < n) {
      eligible_at.push_back(kNeverEligible);
      deadline.push_back(kNeverEligible);
      key_hi.push_back(0);
      key_lo.push_back(0);
      key_alg.push_back(kKeyNone);
      miss_counted.push_back(0);
      ref.emplace_back();
      cursor.emplace_back();
      ready_handle.push_back(kInvalidHandle);
      calendar_when.push_back(-1);
    }
  }

  /// Marks `id` as having no pending subtask (see the parked convention).
  void park(TaskId id) noexcept {
    eligible_at[id] = kNeverEligible;
    deadline[id] = kNeverEligible;
  }

  /// Publishes the pending subtask already written to ref[id]/cursor[id]
  /// into the swept lanes.
  void publish(TaskId id, Time eligible) noexcept {
    eligible_at[id] = eligible;
    deadline[id] = ref[id].deadline;
    key_hi[id] = ref[id].key.hi;
    key_lo[id] = ref[id].key.lo;
    key_alg[id] = ref[id].key_alg;
    miss_counted[id] = 0;
  }
};

/// Per-shard scratch of the sharded SoA kernel.  Phase A (parallel, one
/// job per shard) fills these from the shard's contiguous task-id range
/// without touching any shared state; phase B (the sequential
/// coordinator) merges them in deterministic priority order.  See
/// DESIGN.md "Memory layout & sharding".
struct ShardScratch {
  std::uint32_t begin = 0;  ///< first task id owned this slot
  std::uint32_t end = 0;    ///< one past the last task id owned this slot
  std::vector<std::uint32_t> candidates;  ///< eligible at t, ascending id
  std::vector<SubtaskRef> missed;  ///< newly counted misses, priority order
  std::vector<std::uint32_t> top;  ///< local top-M picks, priority order
  std::vector<std::uint32_t> work;  ///< miss-cascade worklist / sort scratch
};

}  // namespace pfair
