// The SoA slot kernel: steps 3-4 of PfairSimulator::simulate_slot as
// lane sweeps over the SubtaskSoA, optionally sharded across a
// ThreadPool.
//
// Structure (see DESIGN.md "Memory layout & sharding"):
//
//   Phase A  (parallel, one job per shard) — eligibility gather over the
//            shard's contiguous task-id range, local miss sweep /
//            kDrop cascade, local top-M selection.  Touches only lanes
//            the shard owns plus shared *read-only* state; emits
//            nothing, so nothing in phase A races or observes ordering.
//   barrier  ThreadPool::wait() — the per-quantum synchronization point.
//   Phase B  (sequential coordinator) — deterministic k-way merge of the
//            per-shard results in priority order, with all metric
//            accounting and obs emission.
//   Phase B2 (parallel) — advance every picked task to its next subtask,
//            each shard handling the picks in its own id range.
//
// Determinism argument: every priority rule ends in a task-id tie-break,
// so subtask priority is a strict *total* order.  Phase A produces its
// missed / top lists sorted under that order (the kDrop cascade pops a
// local heap, and a cascade insert is always lower-priority than the
// pop that produced it — deadlines strictly increase along a task's
// subtask chain — so pop order is sorted too).  Merging sorted lists
// under a total order has exactly one outcome, independent of shard
// count and thread scheduling; the single-shard and legacy-kernel
// emission sequences are that same sorted order.  Hence byte-identical
// output for shards ∈ {1, 2, 8, ...}.
#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "core/simd.h"
#include "engine/parallel.h"
#include "obs/bus.h"
#include "obs/prof.h"
#include "sim/pfair_sim.h"

namespace pfair {

bool PfairSimulator::soa_less(std::uint32_t a, std::uint32_t b) const noexcept {
  // Mirrors SubtaskPriority::operator() on the lane layout: one two-word
  // integer compare when both pending subtasks carry a packed key for
  // the configured algorithm, the legacy chain otherwise.
  const auto alg8 = static_cast<std::uint8_t>(cmp_.algorithm());
  if (cmp_.packed() && soa_.key_alg[a] == alg8 && soa_.key_alg[b] == alg8) {
    if (cmp_.algorithm() != Algorithm::kPD2 || !pd2_b_bit_flip_for_test()) [[likely]] {
      return soa_.key_hi[a] != soa_.key_hi[b] ? soa_.key_hi[a] < soa_.key_hi[b]
                                              : soa_.key_lo[a] < soa_.key_lo[b];
    }
  }
  return cmp_.compare_legacy(soa_.ref[a], soa_.ref[b]);
}

void PfairSimulator::soa_phase_a(ShardScratch& s, Time t) {
  const obs::prof::ProfScope prof(obs::prof::Phase::kKernelPhaseA,
                                  static_cast<std::int32_t>(&s - shard_scratch_.data()), t);
  s.candidates.clear();
  s.missed.clear();
  s.top.clear();
  s.work.clear();
  const Time* elig = soa_.eligible_at.data();
  const auto higher = [this](std::uint32_t a, std::uint32_t b) { return soa_less(a, b); };

  // Eligibility gather: pending subtasks of the shard's tasks with
  // eligible_at <= t (parked lanes are kNeverEligible and never match).
  simd::collect_le(elig + s.begin, s.end - s.begin, t, s.begin, s.candidates, config_.simd);

  // Miss sweep.  Only *eligible* subtasks can miss — exactly the legacy
  // kernel's semantics, where misses are detected on ready-queue entries
  // (a late subtask can have deadline < eligible_at; it must not be
  // counted until it becomes eligible).
  if (config_.miss_policy == MissPolicy::kScheduleLate) {
    // Missed subtasks stay schedulable; count each at most once, in
    // priority order (the emission order merged in phase B).
    for (const std::uint32_t id : s.candidates) {
      if (soa_.deadline[id] <= t && soa_.miss_counted[id] == 0) s.work.push_back(id);
    }
    std::sort(s.work.begin(), s.work.end(), higher);
    for (const std::uint32_t id : s.work) {
      soa_.miss_counted[id] = 1;
      s.missed.push_back(soa_.ref[id]);
    }
  } else {
    // kDrop: cascade through a local heap in priority order — dropping a
    // missed subtask releases its successor, which may itself already be
    // eligible and missed.  Snapshot each newly counted ref before the
    // advance overwrites its lanes.
    const auto lower = [&higher](std::uint32_t a, std::uint32_t b) { return higher(b, a); };
    for (const std::uint32_t id : s.candidates) {
      if (soa_.deadline[id] <= t) s.work.push_back(id);
    }
    std::make_heap(s.work.begin(), s.work.end(), lower);
    while (!s.work.empty()) {
      std::pop_heap(s.work.begin(), s.work.end(), lower);
      const std::uint32_t id = s.work.back();
      s.work.pop_back();
      if (soa_.miss_counted[id] == 0) {
        soa_.miss_counted[id] = 1;
        s.missed.push_back(soa_.ref[id]);
      }
      ++tasks_[id].next_index;
      soa_.cursor[id].advance();
      enqueue_next_subtask(id, t);
      if (soa_.eligible_at[id] <= t && soa_.deadline[id] <= t) {
        s.work.push_back(id);
        std::push_heap(s.work.begin(), s.work.end(), lower);
      }
    }
    // The cascade changed eligibility lanes; regather for selection.
    s.candidates.clear();
    simd::collect_le(elig + s.begin, s.end - s.begin, t, s.begin, s.candidates, config_.simd);
  }

  // Local top-M: the global top-M is contained in the union of per-shard
  // top-Ms, so M picks per shard is all the coordinator ever needs.
  const auto want = static_cast<std::size_t>(std::max(live_processors_, 0));
  const std::size_t k = std::min(want, s.candidates.size());
  if (k == 0) return;
  s.top.assign(s.candidates.begin(), s.candidates.end());
  std::partial_sort(s.top.begin(), s.top.begin() + static_cast<std::ptrdiff_t>(k),
                    s.top.end(), higher);
  s.top.resize(k);
}

void PfairSimulator::soa_advance_picked(std::uint32_t begin, std::uint32_t end, Time t) {
  for (const Pick& pick : picked_) {
    if (pick.task < begin || pick.task >= end) continue;
    TaskRuntime& rt = tasks_[pick.task];
    rt.picked_slot = t;
    ++rt.next_index;
    soa_.cursor[pick.task].advance();
    ++rt.allocated;
    enqueue_next_subtask(pick.task, t + 1);
  }
}

void PfairSimulator::ensure_shard_pool() {
  if (shard_pool_ == nullptr) {
    shard_pool_ = std::make_unique<engine::ThreadPool>(config_.shards);
  }
}

void PfairSimulator::soa_schedule(Time t) {
  const std::size_t n = soa_.size();
  const auto shards = static_cast<std::size_t>(config_.shards);
  if (shard_scratch_.size() != shards) shard_scratch_.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shard_scratch_[s].begin = static_cast<std::uint32_t>(n * s / shards);
    shard_scratch_[s].end = static_cast<std::uint32_t>(n * (s + 1) / shards);
  }

  // Phase A (+ barrier).
  if (shards == 1) {
    soa_phase_a(shard_scratch_[0], t);
  } else {
    ensure_shard_pool();
    for (ShardScratch& s : shard_scratch_) {
      shard_pool_->submit([this, &s, t] { soa_phase_a(s, t); });
    }
    shard_pool_->wait();
  }

  // Phase B (one prof scope spans the whole sequential coordinator
  // phase — miss merge plus selection — so profiling reads the clock
  // once per slot here, not twice): merge misses in priority order and
  // emit (kDeadlineMiss precedes kSchedInvoke, exactly as in the
  // legacy kernel), then pick the global top-M.
  {
    const obs::prof::ProfScope prof_b(obs::prof::Phase::kKernelMerge, -1, t);
    merge_pos_.assign(shards, 0);
    for (;;) {
      std::size_t best = shards;
      for (std::size_t s = 0; s < shards; ++s) {
        if (merge_pos_[s] >= shard_scratch_[s].missed.size()) continue;
        if (best == shards ||
            cmp_(shard_scratch_[s].missed[merge_pos_[s]],
                 shard_scratch_[best].missed[merge_pos_[best]])) {
          best = s;
        }
      }
      if (best == shards) break;
      const SubtaskRef& ref = shard_scratch_[best].missed[merge_pos_[best]++];
      metrics_.record_miss(t);
      obs::emit(bus_, obs::EventKind::kDeadlineMiss, t, ref.task);
    }

    // Selection + advancement, timed like the legacy scheduler
    // invocation (stop() follows Phase B2).
    timer_.start();

    picked_.clear();
    const auto want = static_cast<std::size_t>(std::max(live_processors_, 0));
    merge_pos_.assign(shards, 0);
    while (picked_.size() < want) {
      std::size_t best = shards;
      for (std::size_t s = 0; s < shards; ++s) {
        if (merge_pos_[s] >= shard_scratch_[s].top.size()) continue;
        if (best == shards || soa_less(shard_scratch_[s].top[merge_pos_[s]],
                                       shard_scratch_[best].top[merge_pos_[best]])) {
          best = s;
        }
      }
      if (best == shards) break;
      const std::uint32_t id = shard_scratch_[best].top[merge_pos_[best]++];
      tasks_[id].last_sched_index = soa_.ref[id].index;
      picked_.push_back(Pick{id, soa_.ref[id].release, 0});
    }
  }

  // Phase B2: per-task advancement, sharded by id ownership.
  if (shards == 1) {
    const obs::prof::ProfScope prof_adv(obs::prof::Phase::kKernelAdvance, 0, t);
    soa_advance_picked(0, static_cast<std::uint32_t>(n), t);
  } else {
    for (ShardScratch& s : shard_scratch_) {
      shard_pool_->submit([this, &s, t] {
        const obs::prof::ProfScope prof_adv(
            obs::prof::Phase::kKernelAdvance,
            static_cast<std::int32_t>(&s - shard_scratch_.data()), t);
        soa_advance_picked(s.begin, s.end, t);
      });
    }
    shard_pool_->wait();
  }

  const double sched_ns = timer_.stop(metrics_);
  ++metrics_.scheduler_invocations;
  ++metrics_.scheduling_points;
  obs::emit(bus_, obs::EventKind::kSchedInvoke, t, kNoTask, kNoProc, sched_ns);
}

}  // namespace pfair
