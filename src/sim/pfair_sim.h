// Quantum-driven global multiprocessor simulator for Pfair scheduling.
//
// The simulator advances time slot by slot.  In each slot it
//   1. applies pending fault-plan / join / leave events,
//   2. moves newly eligible subtasks from the release calendar into the
//      ready queue,
//   3. detects subtasks whose pseudo-deadline has passed,
//   4. invokes the scheduler: pop the M highest-priority subtasks
//      (optionally timing the invocation for the Fig.-2 experiments),
//   5. assigns processors with affinity (a task scheduled in consecutive
//      quanta keeps its processor — the optimisation the paper uses to
//      derive the 1 + min(E-1, P-E) context-switch bound),
//   6. advances each scheduled task to its next subtask and updates
//      preemption / migration / context-switch / lag accounting.
//
// Supertasks participate as ordinary Pfair servers; each quantum they
// receive is passed to an internal EDF dispatcher over their component
// tasks (Sec. 5.5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/dynamics.h"
#include "core/priority.h"
#include "core/supertask.h"
#include "core/task.h"
#include "engine/metrics.h"
#include "engine/overhead_timer.h"
#include "engine/simulator.h"
#include "core/windows.h"
#include "obs/bus.h"
#include "sim/release_wheel.h"
#include "sim/subtask_soa.h"
#include "sim/trace.h"
#include "util/binary_heap.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair {

namespace engine {
class ThreadPool;  // sim/soa_kernel.cpp; lazily built when shards > 1
}  // namespace engine

/// What to do with a subtask that is still unscheduled at its deadline.
enum class MissPolicy : std::uint8_t {
  kScheduleLate,  ///< keep it in the queue; count the miss once (default)
  kDrop,          ///< skip the subtask entirely (quantum is forfeited)
};

struct PfairConfig {
  int processors = 1;
  Algorithm algorithm = Algorithm::kPD2;
  MissPolicy miss_policy = MissPolicy::kScheduleLate;
  bool record_trace = false;    ///< keep a full per-slot allocation trace
  bool affinity = true;         ///< keep tasks on their processor when possible
                                ///< (false = naive assignment; ablation)
  bool check_lags = false;      ///< verify Pfair lag bounds every slot (slow; synchronous periodic systems only)
  bool measure_overhead = false;  ///< steady_clock-time each scheduler invocation
  Time lag_sample_every = 0;    ///< emit an obs kLagSample per task every N
                                ///< slots (0 = off; needs an attached observer)
  bool packed_keys = true;      ///< precompute PackedKeys so ready-queue sifts
                                ///< are single integer compares (false = legacy
                                ///< comparator chain; differential-test reference)
  bool idle_fast_forward = true;  ///< jump over provably idle slot runs in
                                  ///< run_until (auto-disabled whenever any
                                  ///< per-slot work could observe them; see
                                  ///< fast_forward_target)
  bool soa_kernel = true;  ///< lane-sweep slot kernel over the SubtaskSoA
                           ///< (false = legacy heap + timing-wheel kernel;
                           ///< differential-test reference)
  int shards = 1;   ///< task-lane shards the SoA kernel steps in parallel
                    ///< inside each quantum (1 = single-threaded; byte-
                    ///< identical output for any value; the legacy kernel
                    ///< ignores it)
  bool simd = true;  ///< vectorized lane sweeps (false = scalar fallback;
                     ///< bit-identical — see core/simd.h)
};

/// Scheduled change of the number of live processors (fault injection /
/// repair, Sec. 5.4).  Applied at the start of slot `at`.
struct ProcessorEvent {
  Time at = 0;
  int processors = 1;
};

class PfairSimulator : public engine::Simulator {
 public:
  explicit PfairSimulator(PfairConfig config);
  ~PfairSimulator() override;  // out of line: shard pool is fwd-declared

  /// engine::Simulator admission: a synchronous periodic task of weight
  /// e/p, added at the current time (dynamic joins go through join()).
  bool admit(const engine::TaskSpec& spec) override;
  using engine::Simulator::admit;

  /// Adds a periodic / early-release / intra-sporadic task starting at
  /// time 0 (or at the current time if the simulation already ran).
  /// Returns its id.  For IS tasks, `arrivals[i-1]` is the absolute
  /// arrival time of subtask i; arrivals beyond the vector are on time.
  TaskId add_task(const Task& t, std::vector<Time> arrivals = {});

  /// Adds a supertask competing with spec.competing_weight().  If
  /// `bound_proc` is given, every quantum the supertask receives runs on
  /// that processor (the Moir-Ramamurthy motivation: component tasks
  /// must not migrate).  At most one bound task per processor.  If a
  /// fault later removes the bound processor, the binding degrades
  /// gracefully: the server migrates like a normal task until the
  /// processor returns (deadline guarantees are unaffected — binding
  /// only constrains placement).
  TaskId add_supertask(const SupertaskSpec& spec, ProcId bound_proc = kNoProc);

  /// Registers a processor-count change (must be issued before run()
  /// reaches `at`).
  void add_processor_event(ProcessorEvent ev);

  /// This is the scheduler whose dynamic story the paper argues for:
  /// the engine::Simulator join/leave/reweight protocol is fully
  /// supported after the simulation has started.
  [[nodiscard]] bool can_dynamic() const noexcept override { return true; }

  /// Dynamic join at the current simulation time.  Returns the new id,
  /// or std::nullopt if Eq. (2) would be violated.
  std::optional<TaskId> join(const Task& t);

  /// engine::Simulator spelling of join(); same Eq.-(2) admission.
  std::optional<TaskId> join(const engine::TaskSpec& spec) override;

  /// Earliest time `id` may legally leave (core/dynamics.h rules);
  /// -1 for an unknown or inactive id.
  [[nodiscard]] Time earliest_leave(TaskId id) const override;

  /// Dynamic leave at the current simulation time.  Returns false (and
  /// does nothing) if leaving now would violate the leave rules.
  bool leave(TaskId id) override;

  /// Initiates an orderly departure: the task stops executing now, its
  /// weight stays accounted until the leave rules release it, and the
  /// returned time is when the capacity frees.  (A continuously running
  /// heavy task can never satisfy leave() directly — each new quantum
  /// pushes its group deadline forward — so real departures go through
  /// this protocol.)  nullopt for an unknown or inactive id.
  std::optional<Time> request_leave(TaskId id) override;

  /// Orderly reweighting (leave + rejoin with the new weight, Sec. 5.2):
  /// the task stops executing now and resumes with weight new_e/new_p at
  /// the time the leave rules free its old weight.  Fails (returning
  /// nullopt) only if the new total would exceed capacity; otherwise
  /// returns the switch-over time.
  std::optional<Time> request_reweight(TaskId id, std::int64_t new_e, std::int64_t new_p);

  /// engine::Simulator spelling of request_reweight().
  std::optional<Time> request_reweight(TaskId id, const engine::TaskSpec& spec) override;

  /// Leaves unconditionally, ignoring the safety rules.  Exists so tests
  /// can demonstrate that violating the rules can cause misses.
  void force_leave(TaskId id);

  /// Reweights a task (leave + join with the new weight, Sec. 5.2/5.4).
  /// Returns false if the leave rules forbid it now or the new weight
  /// does not fit.
  bool reweight(TaskId id, std::int64_t new_e, std::int64_t new_p);

  /// Runs the simulation up to (absolute) time `until`.  May be called
  /// repeatedly with increasing horizons; joins/leaves can be interleaved.
  void run_until(Time until) override;

  [[nodiscard]] Time now() const noexcept override { return now_; }
  [[nodiscard]] const engine::Metrics& metrics() const noexcept override {
    return metrics_;
  }

  /// Structured-event observation (obs layer); nullptr detaches.  With
  /// no bus attached every emission site is a single pointer test.
  void attach_observer(obs::EventBus* bus) override { bus_ = bus; }
  [[nodiscard]] const ScheduleTrace& trace() const noexcept { return trace_; }
  [[nodiscard]] const PfairConfig& config() const noexcept { return config_; }

  /// Total weight of currently active tasks.  Maintained incrementally
  /// on join/leave/reweight/departure, so admission checks are O(1)
  /// instead of an O(N) Rational sum per call.
  [[nodiscard]] Rational active_weight() const noexcept { return active_weight_; }

  /// O(N) recomputation of active_weight() from scratch; test/debug hook
  /// asserting the incremental sum never drifts.
  [[nodiscard]] Rational recompute_active_weight() const;

  /// Slots skipped by the idle fast-forward (run_until jumping straight
  /// to the next calendar/processor-event boundary); the counter lives
  /// in engine::Metrics so sweeps aggregate it like any other metric.
  [[nodiscard]] std::uint64_t fast_forwarded_slots() const noexcept {
    return metrics_.fast_forwarded_slots;
  }

  /// Quanta allocated to `id` so far.
  [[nodiscard]] std::int64_t allocated(TaskId id) const { return tasks_[id].allocated; }

  /// Exact lag of `id` at the current time (synchronous periodic tasks).
  [[nodiscard]] Rational task_lag(TaskId id) const;

  /// Per-task maximum preemptions observed in any single job.
  [[nodiscard]] std::int64_t max_job_preemptions(TaskId id) const {
    return tasks_[id].max_job_preemptions;
  }

  /// Names of all tasks (index = TaskId), for trace rendering.
  [[nodiscard]] std::vector<std::string> task_names() const;

  /// Deadline-miss count of one supertask component (task `id` must be a
  /// supertask; `component` indexes its spec.components).
  [[nodiscard]] std::uint64_t component_miss_count(TaskId id, std::size_t component) const;

 private:
  struct ComponentRuntime {
    std::int64_t e = 1;
    std::int64_t p = 1;
    Time next_release = 0;
    // Outstanding jobs, oldest first: (absolute deadline, remaining quanta).
    std::vector<std::pair<Time, std::int64_t>> jobs;
    std::uint64_t misses = 0;
    bool miss_counted_for_head = false;
  };

  struct SupertaskRuntime {
    TaskId owner = kNoTask;            ///< the server task this belongs to
    std::vector<ComponentRuntime> components;
    std::int32_t last_component = -1;  ///< for component-switch accounting
  };

  struct TaskRuntime {
    Task spec;
    bool active = false;
    bool is_supertask = false;
    std::int32_t super_index = -1;     ///< into supertasks_ if is_supertask
    ProcId bound_proc = kNoProc;       ///< fixed processor (supertask binding)
    SubtaskIndex next_index = 1;       ///< next subtask to schedule
    SubtaskIndex last_sched_index = 0; ///< 0 = never scheduled
    Time offset = 0;                   ///< accumulated IS window shift
    Time join_time = 0;
    std::vector<Time> arrivals;        ///< IS arrival times (absolute)
    std::int64_t allocated = 0;
    ProcId last_proc = kNoProc;
    Time last_sched_slot = -2;         ///< slot of most recent allocation
    Time picked_slot = -2;             ///< slot the scheduler last picked this
                                       ///< task (replaces the O(M) runs-now scan)
    // Per-pending-subtask state (ref, cursor, eligibility, queue handles,
    // miss flag) lives in the SubtaskSoA lanes soa_[id], not here — the
    // per-slot sweeps must not stride through this struct.
    Time leave_at = -1;          ///< pending departure (weight frees then)
    std::int64_t pending_e = 0;  ///< pending reweight (0 = plain leave)
    std::int64_t pending_p = 0;
    std::int64_t cur_job_preemptions = 0;
    std::int64_t max_job_preemptions = 0;
  };

  void simulate_slot();
  void release_eligible(Time t);
  void detect_misses(Time t);
  /// Schedules the next subtask of `id`: publishes it to the SoA lanes
  /// and (legacy kernel only) inserts it into the ready queue or the
  /// release calendar depending on its eligibility time.
  void enqueue_next_subtask(TaskId id, Time earliest);
  /// Eligibility time of subtask `i` of task `id` given that its
  /// predecessor completed at the end of slot `prev_slot` (-1 if none).
  [[nodiscard]] Time eligibility_time(TaskId id, SubtaskIndex i, Time prev_slot) const;
  void dispatch_supertask_quantum(TaskRuntime& rt, Time t);
  void remove_from_queues(TaskId id);
  void check_lags(Time t_next);

  // --- SoA slot kernel (sim/soa_kernel.cpp) ---
  /// Steps 3-4 of simulate_slot on the lane layout: miss sweep, top-M
  /// selection, subtask advancement.  With config_.shards > 1 the sweep
  /// and advancement fan out across shard_pool_ with a per-quantum
  /// barrier; the merge/emission phase is sequential and deterministic.
  void soa_schedule(Time t);
  /// Phase A for one shard: eligibility gather, local miss cascade,
  /// local top-M selection.  Touches only state owned by the shard's
  /// task-id range; emits nothing.
  void soa_phase_a(ShardScratch& s, Time t);
  /// Advances every entry of picked_ whose task id falls in [begin, end)
  /// to its next subtask (phase B2; per-task state only).
  void soa_advance_picked(std::uint32_t begin, std::uint32_t end, Time t);
  /// Strict priority order between the pending subtasks of tasks a and b
  /// (lane fast path; exactly SubtaskPriority's dispatch).
  [[nodiscard]] bool soa_less(std::uint32_t a, std::uint32_t b) const noexcept;
  /// Builds shard_pool_ on first use (config_.shards workers).
  void ensure_shard_pool();
  void process_pending_departures(Time t);
  /// Algorithm passed to make_subtask_ref for key packing (kWRR = no
  /// keys when packed_keys is off).
  [[nodiscard]] Algorithm ref_algorithm() const noexcept;
  /// Latest time in (now_, until] the simulation can jump to with every
  /// skipped slot provably idle and unobserved, or now_ when fast-forward
  /// is not eligible.
  [[nodiscard]] Time fast_forward_target(Time until) const;
  /// Bulk-accounts `count` idle slots (metrics, trace) without running
  /// the per-slot kernel.
  void account_idle_slots(Time count);

  PfairConfig config_;
  Time now_ = 0;
  int live_processors_ = 1;
  std::vector<TaskRuntime> tasks_;
  SubtaskSoA soa_;                   ///< per-pending-subtask lanes (index = TaskId)
  SubtaskPriority cmp_;              ///< the configured priority order
  std::vector<SupertaskRuntime> supertasks_;
  std::int64_t bound_count_ = 0;             ///< tasks with a fixed processor
  BinaryHeap<SubtaskRef, SubtaskPriority> ready_;
  ReleaseWheel wheel_;                       ///< release calendar (O(1) push/drain)
  std::int64_t calendar_live_ = 0;           ///< tasks with calendar_when >= 0
  std::vector<ProcessorEvent> proc_events_;  ///< sorted by time, applied in order
  std::size_t next_proc_event_ = 0;
  std::vector<TaskId> pending_departures_;   ///< tasks with leave_at set
  Rational active_weight_ = Rational(0);     ///< cached sum over active tasks
  engine::Metrics metrics_;
  engine::OverheadTimer timer_;
  obs::EventBus* bus_ = nullptr;  ///< borrowed; nullptr = observation off
  ScheduleTrace trace_;
  bool last_slot_allocated_ = false;  ///< the preceding simulated slot scheduled
                                      ///< something (its preemption accounting
                                      ///< may still fire one slot later)
  // Scratch buffers reused every slot (the slot kernel is allocation-free
  // once they reach steady-state capacity).
  /// What the assignment/accounting passes need from a scheduled subtask
  /// — the full SubtaskRef stays in the task's pending_ref and never
  /// crosses the kernel by value.
  struct Pick {
    TaskId task;
    Time release;
    std::uint8_t placed;  ///< assignment passes: already given a processor
  };
  std::vector<Pick> picked_;
  std::vector<TaskId> requeue_;              ///< kScheduleLate miss re-inserts
  std::vector<TaskId> prev_slot_tasks_;      ///< proc -> task of previous slot
  std::vector<std::int32_t> assign_;         ///< proc -> index into picked_ (-1 idle)
  // SoA kernel scratch: per-shard phase-A results plus the coordinator's
  // k-way merge cursors (all reused; allocation-free at steady state).
  std::vector<ShardScratch> shard_scratch_;
  std::vector<std::size_t> merge_pos_;       ///< per-shard merge cursor
  std::unique_ptr<engine::ThreadPool> shard_pool_;  ///< lazily built; shards > 1 only
};

}  // namespace pfair
