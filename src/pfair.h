// Umbrella header: the full public API of the pfair library.
//
//   #include "pfair.h"
//
// Subsystem map (see DESIGN.md for the full inventory):
//   core/      Pfair model: windows, priorities (PD2/PD/PF/EPDF), tasks,
//              lag, dynamic-join/leave rules, supertasks + packing
//   engine/    runtime substrate shared by every simulator: unified
//              metrics, simulator interface, overhead timing,
//              comparison driver, experiment harness
//   sim/       global schedulers: quantum-driven Pfair simulator,
//              job-level global EDF/RM, WRR baseline, trace verifier
//   uniproc/   uniprocessor substrate: EDF/RM simulators + analysis,
//              partitioned runtime, CBS servers
//   partition/ bin-packing heuristics + acceptance tests + bounds
//   overhead/  Eq.-(3) inflation, cost tables, calibration, quantum
//              tradeoff
//   workload/  reproducible random workload generators
//   sync/      quantum-boundary locking, lock-free retry bounds
#pragma once

#include "core/dynamics.h"
#include "core/lag.h"
#include "core/priority.h"
#include "core/supertask.h"
#include "core/supertask_packing.h"
#include "core/task.h"
#include "core/window_diagram.h"
#include "core/windows.h"
#include "overhead/calibrate.h"
#include "overhead/inflation.h"
#include "overhead/params.h"
#include "overhead/quantum_tradeoff.h"
#include "engine/compare.h"
#include "engine/harness.h"
#include "engine/metrics.h"
#include "engine/overhead_timer.h"
#include "engine/simulator.h"
#include "partition/heuristics.h"
#include "partition/uni_partition.h"
#include "sim/global_job_sim.h"
#include "sim/pfair_sim.h"
#include "sim/trace.h"
#include "sim/verifier.h"
#include "sim/wrr_sim.h"
#include "sync/quantum_lock.h"
#include "uniproc/analysis.h"
#include "uniproc/cbs_sim.h"
#include "uniproc/partitioned_sim.h"
#include "uniproc/uni_sim.h"
#include "uniproc/uni_task.h"
#include "util/rational.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/types.h"
#include "workload/generator.h"
