// The simulator factory: one construction path for every scheduler
// stack in the repo.
//
// Before this existed, every bench, example, and comparison driver
// hardcoded one of six concrete constructors (PfairSimulator,
// PartitionedSimulator, GlobalJobSimulator, UniprocSimulator,
// WrrSimulator, CbsSimulator), each with its own config spelling.  The
// factory names each stack with a SchedulerKind, gathers every stack's
// named-field config struct into one SimulatorConfig, and builds an
// empty simulator ready for Simulator::admit() — so a driver can be
// parameterised by kind (CLI flags, sweep tables, registries) instead
// of by type.
//
//   engine::SimulatorConfig cfg;
//   cfg.pfair.processors = 4;
//   auto sim = engine::make_simulator(engine::SchedulerKind::kPfair, cfg);
//   sim->admit(engine::task_spec(2, 5));
//   sim->run_until(1000);
//
// Kinds also round-trip through strings ("pfair", "partitioned",
// "global-job", "uniproc", "wrr", "cbs", "bf", "run") for command-line
// use — see tools/pfair_trace's `simulate` subcommand.
#pragma once

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "engine/simulator.h"
#include "sim/bf_sim.h"
#include "sim/global_job_sim.h"
#include "sim/pfair_sim.h"
#include "sim/run_sim.h"
#include "sim/wrr_sim.h"
#include "uniproc/cbs_sim.h"
#include "uniproc/partitioned_sim.h"
#include "uniproc/uni_sim.h"

namespace pfair::engine {

enum class SchedulerKind : std::uint8_t {
  kPfair,        ///< quantum-driven global Pfair (PD2/PD/PF/EPDF via PfairConfig)
  kPartitioned,  ///< bin-packed ensemble of uniprocessor EDF/RM schedulers
  kGlobalJob,    ///< global job-level EDF/RM (the Dhall straw man)
  kUniproc,      ///< event-driven uniprocessor EDF/RM
  kWrr,          ///< weighted round-robin on quantised weights
  kCbs,          ///< CBS servers + hard periodic tasks on one EDF processor
  kBf,           ///< boundary-fair: optimal, decisions only at period boundaries
  kRun,          ///< RUN: optimal, offline reduction tree + online server EDF
};

/// The registry name of a kind ("pfair", "partitioned", ...).
[[nodiscard]] const char* to_string(SchedulerKind kind) noexcept;

/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<SchedulerKind> scheduler_kind_from_string(
    std::string_view name) noexcept;

/// Every registered kind, in registry order (stable across runs; handy
/// for CLI listings and exhaustive tests).
[[nodiscard]] const std::vector<SchedulerKind>& all_scheduler_kinds();

/// One named-field config per scheduler stack; make_simulator reads only
/// the member matching the requested kind, so a single SimulatorConfig
/// can parameterise a whole comparison sweep.
struct SimulatorConfig {
  PfairConfig pfair;
  PartitionConfig partitioned;
  GlobalJobConfig global_job;
  UniSimConfig uniproc;
  WrrConfig wrr;
  CbsConfig cbs;
  BfConfig bf;
  RunConfig run;
  int shards = 0;  ///< shard override: > 0 replaces pfair.shards (the SoA
                   ///< slot-kernel parallelism; output is byte-identical
                   ///< for any value), 0 or 1 defers to the per-kind
                   ///< config.  Kinds without a sharded kernel reject
                   ///< shards > 1 — silently ignoring a parallelism
                   ///< request would misreport what a sweep measured.
};

/// Builds an empty simulator of `kind`; load it via Simulator::admit()
/// (every stack accepts admission at time 0).  Never returns nullptr;
/// throws std::invalid_argument — with a message naming the kind, the
/// field, and the offending value — when the kind's config section is
/// unusable (processors/frame < 1, max_processors < 1, CBS server with
/// Q < 1 or T < 1).  Exact messages are part of the tested contract
/// (tests/engine/factory_test.cpp).
[[nodiscard]] std::unique_ptr<Simulator> make_simulator(SchedulerKind kind,
                                                        const SimulatorConfig& config = {});

}  // namespace pfair::engine
