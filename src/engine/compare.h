// Scheduler-agnostic comparison driver.
//
// The paper's comparisons (Dhall effect, PD2 vs EDF-FF runtime
// behaviour) all have the same shape: build one workload, run it
// through several schedulers, read one set of counters.  A
// SchedulerSpec names a scheduler and knows how to build its simulator
// for a given synchronous periodic workload; compare_schedulers() runs
// the workload through every spec and returns the unified metrics, so
// benches and tests no longer hand-roll a loop per scheduler pair.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/factory.h"
#include "engine/metrics.h"
#include "engine/simulator.h"
#include "uniproc/uni_task.h"

namespace pfair::engine {

struct SchedulerSpec {
  std::string name;
  /// Builds a simulator with `workload` offered task by task through
  /// Simulator::admit().  Rejected tasks are counted in the simulator's
  /// metrics (tasks_rejected) — the driver reports any rejection as
  /// feasible = false and does not run the partial system.  nullptr is
  /// also accepted (scheduler could not even be built).
  std::function<std::unique_ptr<Simulator>(const std::vector<UniTask>&)> make;
};

struct CompareResult {
  std::string name;
  bool feasible = false;  ///< the scheduler accepted every task
  Metrics metrics;        ///< counters at the horizon when feasible;
                          ///< otherwise only the admission counters
                          ///< (tasks_admitted / tasks_rejected) are set
};

/// Runs `workload` through every spec up to `horizon`; results are in
/// spec order.
[[nodiscard]] std::vector<CompareResult> compare_schedulers(
    const std::vector<UniTask>& workload, const std::vector<SchedulerSpec>& specs,
    Time horizon);

// --- standard specs for the repo's simulator stacks ---
// All are thin wrappers over kind_spec(); every simulator is built
// through engine::make_simulator, never a concrete constructor.

/// Any registered scheduler kind with full config control.  The
/// workload is loaded through Simulator::admit(); a rejected task makes
/// the spec infeasible.
[[nodiscard]] SchedulerSpec kind_spec(std::string name, SchedulerKind kind,
                                      SimulatorConfig config);
/// Global Pfair with full config control (name e.g. "PD2").
[[nodiscard]] SchedulerSpec pfair_spec(std::string name, PfairConfig config);
/// Global PD2 on `processors` (the common case).
[[nodiscard]] SchedulerSpec pd2_spec(int processors);
/// Partitioned EDF/RM behind a bin-packing front end; infeasible when
/// not every task can be placed.
[[nodiscard]] SchedulerSpec partitioned_spec(std::string name, PartitionConfig config);
/// Global job-level EDF or RM on `processors` (the Dhall straw man).
[[nodiscard]] SchedulerSpec global_job_spec(int processors, UniAlgorithm algorithm);
/// Event-driven uniprocessor EDF/RM.
[[nodiscard]] SchedulerSpec uniproc_spec(std::string name, UniSimConfig config);
/// Weighted round-robin on quantised weights.
[[nodiscard]] SchedulerSpec wrr_spec(WrrConfig config);
/// Boundary-fair: optimal, decisions only at period boundaries.
[[nodiscard]] SchedulerSpec bf_spec(BfConfig config);
/// RUN: optimal, offline reduction tree + online server EDF.  Admission
/// is capacity-checked, so an overutilised workload reports infeasible.
[[nodiscard]] SchedulerSpec run_spec(RunConfig config);

}  // namespace pfair::engine
