// Shared experiment harness for the bench binaries.
//
// Every bench used to hand-roll positional horizon/trials/seed parsing
// and printf-only output.  The harness gives them all:
//   - uniform flag parsing: --trials=N --horizon=N --seed=N --json
//     (also accepted as "--flag N"; unknown flags are ignored so
//     google-benchmark's --benchmark_* flags pass through), plus
//     arbitrary bench-specific flags via flag()/flag_double();
//   - per-point result rows holding scalars or RunningStats (mean and
//     99% confidence interval, the paper's reporting convention);
//   - machine-readable output: with --json, finish() writes
//     BENCH_<name>.json next to the binary so the performance
//     trajectory of every bench is trackable across PRs.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "obs/histogram.h"
#include "util/stats.h"

namespace pfair::engine {

class ExperimentHarness {
 public:
  /// `name` keys the JSON file (BENCH_<name>.json).  Flags are parsed
  /// from argv immediately; parsing never fails (malformed values fall
  /// back to defaults at lookup time).
  ExperimentHarness(std::string name, int argc, char** argv);

  // --- common flags (defaults are per-bench) ---
  [[nodiscard]] long long trials(long long fallback) const;
  [[nodiscard]] long long horizon(long long fallback) const;
  [[nodiscard]] std::uint64_t seed(std::uint64_t fallback = 1) const;
  [[nodiscard]] bool json() const noexcept { return json_; }

  /// --prof attaches self-profiling (obs::prof::set_enabled(true) at
  /// parse time).  Bare --prof folds the MetricsRegistry snapshot into
  /// the BENCH JSON as a "prof" member; --prof=FILE writes the snapshot
  /// to FILE and leaves the report byte-identical to a prof-off run
  /// (the form CI's prof-parity cmp uses).  Never echoed into params.
  [[nodiscard]] bool prof() const noexcept { return prof_; }

  /// --jobs=N worker threads for parallel sweeps (engine/parallel.h);
  /// absent or N <= 0 resolves to hardware_concurrency.  Deliberately
  /// NOT echoed into the JSON params: the determinism guarantee is that
  /// --jobs=1 and --jobs=N reports are byte-identical, so the worker
  /// count must not appear in the report.
  [[nodiscard]] int jobs() const;

  /// --shards=N slot-kernel shards for the Pfair SoA kernel
  /// (PfairConfig::shards / SimulatorConfig::shards); absent or N <= 0
  /// resolves to 1.  Like --jobs, deliberately NOT echoed into the JSON
  /// params: simulator output is byte-identical for any shard count, and
  /// the CI shard-parity check cmp's the --shards=1 and --shards=2
  /// reports to prove it.
  [[nodiscard]] int shards() const;

  /// Any --key=value flag as integer / double; `fallback` when absent
  /// or malformed.  Looked-up flags are echoed into the JSON "params"
  /// (sorted by key, first lookup wins).  Lookups are thread-safe, so
  /// flags may be read from ParallelSweep trial functions — though
  /// flags read only after finish() wrote the report cannot appear in
  /// it; read flags up front.
  [[nodiscard]] long long flag(const std::string& key, long long fallback) const;
  [[nodiscard]] double flag_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::string flag_string(const std::string& key,
                                        const std::string& fallback) const;

  // --- result recording ---
  struct Value {
    std::variant<double, long long, std::string, RunningStats, obs::Histogram> v;
  };
  class Row {
   public:
    Row& set(const std::string& key, double v);
    Row& set(const std::string& key, long long v);
    Row& set(const std::string& key, const std::string& v);
    /// Expands to {"mean":..., "ci99":..., "min":..., "max":..., "n":...}.
    Row& set(const std::string& key, const RunningStats& s);
    /// Expands to {"edges":[...], "counts":[...], "underflow":...,
    /// "overflow":..., "total":..., "p50":..., "p99":...}.
    Row& set(const std::string& key, const obs::Histogram& h);

   private:
    friend class ExperimentHarness;
    std::vector<std::pair<std::string, Value>> cells_;
  };

  /// Starts a new result row (one per plotted point).
  Row& add_row();

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Destination of the JSON report: --json=FILE if given, else
  /// BENCH_<name>.json in the working directory.
  [[nodiscard]] std::string json_path() const;

  /// Writes the JSON report when --json was passed.  Returns
  /// `exit_code` (or 1 if the report could not be written) so harness
  /// mains can end with `return h.finish(failures);`.
  int finish(int exit_code = 0);

  /// Serializes the report (used by finish() and the unit tests).
  [[nodiscard]] std::string to_json() const;

 private:
  [[nodiscard]] const std::string* raw_flag(const std::string& key) const;
  void record_param(const std::string& key, Value v) const;

  std::string name_;
  bool json_ = false;
  bool prof_ = false;
  std::string json_file_;                                  ///< --json=FILE override
  std::string prof_file_;                                  ///< --prof=FILE destination
  std::vector<std::pair<std::string, std::string>> args_;  ///< parsed --key value pairs
  // Flags looked up so far, with the values resolved (echoed as
  // params).  A sorted map guarded by a mutex: lookups can come from
  // worker threads in any order, but the JSON echo must be identical
  // run-to-run, so serialization order is the key order, not the
  // lookup order, and repeat lookups collapse to one entry.
  mutable std::mutex params_mutex_;
  mutable std::map<std::string, Value> params_;
  std::vector<Row> rows_;
};

}  // namespace pfair::engine
