// The one metrics struct shared by every simulator in the repo.
//
// The paper's argument rests on apples-to-apples comparison of PD2
// against EDF-FF and global EDF/RM under identical accounting (Sec. 4,
// Figs. 2-4).  Every simulator therefore reports into this single
// superset struct instead of a per-simulator one, so a comparison
// driver can read the same fields from any scheduler.
//
// Definitions follow the paper's accounting (Sec. 4):
//   - preemption: a task was scheduled in slot t-1, its current job is
//     incomplete, and it is not scheduled in slot t (whether it resumes
//     on the same or another processor — the cache analysis assumes a
//     cold cache either way);
//   - migration: a task runs in slot t on a different processor than its
//     previous quantum;
//   - context switch: a processor runs a different task in slot t than
//     in slot t-1 (switch-in accounting).
// Event-driven (job-level) simulators use the natural job analogues of
// the same definitions; fields that do not apply to a simulator stay at
// their zero defaults.
#pragma once

#include <cstdint>

#include "util/stats.h"
#include "util/types.h"

namespace pfair::engine {

struct Metrics {
  // --- admission accounting (all simulators) ---
  std::uint64_t tasks_admitted = 0;  ///< admit()/join() requests accepted
  std::uint64_t tasks_rejected = 0;  ///< admit()/join() requests refused
                                     ///< (invalid spec, capacity, bin-packing
                                     ///< failure, run already started)

  // --- quantum-driven accounting (PD2, WRR) ---
  std::uint64_t slots = 0;               ///< slots simulated
  std::uint64_t busy_quanta = 0;         ///< processor-quanta allocated
  std::uint64_t idle_quanta = 0;         ///< processor-quanta left idle
  std::uint64_t fast_forwarded_slots = 0;  ///< slots skipped by idle fast-forward
                                           ///< (subset of `slots`)

  // --- job accounting (all simulators) ---
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t component_misses = 0;    ///< supertask component job misses

  // --- scheduling events ---
  std::uint64_t preemptions = 0;
  std::uint64_t migrations = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t component_switches = 0;  ///< supertask-internal EDF switches
  std::uint64_t scheduler_invocations = 0;
  std::uint64_t scheduling_points = 0;   ///< distinct instants at which the
                                         ///< scheduler decided: per-quantum
                                         ///< sims one per slot (incl. fast-
                                         ///< forwarded), BF one per period
                                         ///< boundary, RUN one per event
                                         ///< instant — the axis the BF/RUN
                                         ///< papers optimise
  std::uint64_t lag_violations = 0;      ///< only when lag checking enabled

  // --- server accounting (CBS) ---
  std::uint64_t served_jobs_completed = 0;
  std::int64_t served_work = 0;              ///< server execution time granted
  std::uint64_t deadline_postponements = 0;  ///< budget-exhaustion events

  Time first_miss_time = -1;    ///< -1 if no miss observed
  double sched_ns_total = 0.0;  ///< only when overhead timing enabled
  RunningStats response_time;   ///< per-job response times (slots)

  /// Records a deadline miss at time `t`, folding the first-miss
  /// sentinel handling that used to be re-implemented per simulator.
  void record_miss(Time t) noexcept {
    ++deadline_misses;
    note_miss_time(t);
  }

  /// Records a supertask component miss at time `t`.
  void record_component_miss(Time t) noexcept {
    ++component_misses;
    note_miss_time(t);
  }

  /// Updates first_miss_time only (for callers with bespoke counters).
  void note_miss_time(Time t) noexcept {
    if (first_miss_time < 0) first_miss_time = t;
  }

  [[nodiscard]] double avg_sched_ns() const noexcept {
    return scheduler_invocations > 0
               ? sched_ns_total / static_cast<double>(scheduler_invocations)
               : 0.0;
  }

  [[nodiscard]] double utilization() const noexcept {
    const std::uint64_t cap = busy_quanta + idle_quanta;
    return cap > 0 ? static_cast<double>(busy_quanta) / static_cast<double>(cap) : 0.0;
  }

  /// Field-wise sum, for aggregating per-processor schedulers
  /// (partitioned systems).  first_miss_time takes the earliest miss.
  /// `slots` counts wall-clock slots, which the per-processor schedulers
  /// of one partitioned system share — so it takes the max, not the sum
  /// (summing would report P× the horizon on a P-processor system).
  void merge(const Metrics& o) noexcept {
    tasks_admitted += o.tasks_admitted;
    tasks_rejected += o.tasks_rejected;
    if (o.slots > slots) slots = o.slots;
    busy_quanta += o.busy_quanta;
    fast_forwarded_slots += o.fast_forwarded_slots;
    idle_quanta += o.idle_quanta;
    jobs_released += o.jobs_released;
    jobs_completed += o.jobs_completed;
    deadline_misses += o.deadline_misses;
    component_misses += o.component_misses;
    preemptions += o.preemptions;
    migrations += o.migrations;
    context_switches += o.context_switches;
    component_switches += o.component_switches;
    scheduler_invocations += o.scheduler_invocations;
    scheduling_points += o.scheduling_points;
    lag_violations += o.lag_violations;
    served_jobs_completed += o.served_jobs_completed;
    served_work += o.served_work;
    deadline_postponements += o.deadline_postponements;
    if (o.first_miss_time >= 0 &&
        (first_miss_time < 0 || o.first_miss_time < first_miss_time)) {
      first_miss_time = o.first_miss_time;
    }
    sched_ns_total += o.sched_ns_total;
    response_time.merge(o.response_time);
  }
};

}  // namespace pfair::engine
