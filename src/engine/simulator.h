// The scheduler-agnostic simulator interface.
//
// Every simulator stack in the repo — quantum-driven global Pfair,
// event-driven uniprocessor EDF/RM, the partitioned ensemble, global
// job-level EDF/RM, weighted round-robin, and CBS — implements this
// interface, so comparison drivers and tests can run the same workload
// through any of them and read the same engine::Metrics.
//
// Tasks are submitted as a TaskSpec: one request shape shared by static
// admission (admit) and the dynamic protocol (join / leave / reweight),
// so a request stream recorded against one scheduler replays against
// any other.  Schedulers that cannot change their task system mid-run
// report can_dynamic() = false and inherit the rejecting defaults for
// the dynamic calls.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "engine/metrics.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair::obs {
class EventBus;
}  // namespace pfair::obs

namespace pfair::engine {

/// A synchronous periodic task as submitted through the request API:
/// worst-case execution `execution` every `period` quanta (implicit
/// deadline), releasing from the current time.  The rate may be given
/// directly as `weight` instead, in which case it wins over
/// execution/period and the task runs as num/den in lowest terms
/// (Rational normalises).  `name` is an optional trace label.
struct TaskSpec {
  std::int64_t execution = 1;
  std::int64_t period = 1;
  std::optional<Rational> weight;
  std::string name;

  /// Execution actually requested (weight spelling wins).
  [[nodiscard]] std::int64_t resolved_execution() const noexcept {
    return weight.has_value() ? weight->num() : execution;
  }
  /// Period actually requested (weight spelling wins).
  [[nodiscard]] std::int64_t resolved_period() const noexcept {
    return weight.has_value() ? weight->den() : period;
  }
  /// 0 < e <= p — the same validity rule every simulator enforces.
  [[nodiscard]] bool valid() const noexcept {
    const std::int64_t e = resolved_execution();
    const std::int64_t p = resolved_period();
    return e > 0 && p > 0 && e <= p;
  }
};

/// Shorthand for the common execution/period spelling.
[[nodiscard]] inline TaskSpec task_spec(std::int64_t execution, std::int64_t period,
                                        std::string name = {}) {
  TaskSpec s;
  s.execution = execution;
  s.period = period;
  s.name = std::move(name);
  return s;
}

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Advances the simulation to (absolute) time `until`.  May be called
  /// repeatedly with increasing horizons.
  virtual void run_until(Time until) = 0;

  /// Current simulation time.
  [[nodiscard]] virtual Time now() const = 0;

  /// Unified counters (see engine/metrics.h for field semantics).
  [[nodiscard]] virtual const Metrics& metrics() const = 0;

  /// Admits the task described by `spec`, releasing from the current
  /// time.  Returns false if this simulator cannot admit it — the spec
  /// is invalid, admission is only supported before the simulation
  /// starts, or the task does not fit the remaining capacity.  Every
  /// call increments Metrics::tasks_admitted or tasks_rejected.
  virtual bool admit(const TaskSpec& spec) = 0;

  // --- dynamic task protocol -----------------------------------------
  // Default implementations reject: only schedulers whose admission
  // story survives mid-run task-system changes (Pfair, Sec. 5.2)
  // override them.  Probe can_dynamic() before scripting joins/leaves.

  /// True when join/leave/reweight work after run_until() has advanced
  /// time.  (admit() may still work mid-run on schedulers where static
  /// addition is safe — this probes the *departure* rules.)
  [[nodiscard]] virtual bool can_dynamic() const noexcept { return false; }

  /// Dynamic join at the current time; nullopt when the scheduler's
  /// admission rule rejects (or dynamics are unsupported).  Counts into
  /// tasks_admitted / tasks_rejected like admit().
  virtual std::optional<TaskId> join(const TaskSpec& /*spec*/) { return std::nullopt; }

  /// Earliest time `id` may legally leave; -1 when unsupported/unknown.
  [[nodiscard]] virtual Time earliest_leave(TaskId /*id*/) const { return -1; }

  /// Immediate leave iff the scheduler's departure rules allow it *now*;
  /// false (and no effect) otherwise.
  virtual bool leave(TaskId /*id*/) { return false; }

  /// Orderly departure: the task stops executing now, its capacity is
  /// released when the departure rules allow, and the returned time is
  /// when it frees.  nullopt when unsupported or `id` is unknown.
  virtual std::optional<Time> request_leave(TaskId /*id*/) { return std::nullopt; }

  /// Orderly reweight to `spec`'s rate (leave + rejoin semantics):
  /// returns the switch-over time, or nullopt when the new total would
  /// not fit (or dynamics are unsupported).
  virtual std::optional<Time> request_reweight(TaskId /*id*/, const TaskSpec& /*spec*/) {
    return std::nullopt;
  }

  /// Attaches a structured-event observer (see obs/bus.h).  The bus is
  /// borrowed, not owned, and must outlive the simulator; passing
  /// nullptr detaches.  Simulators that predate the obs layer ignore
  /// the call — the default implementation is a no-op — so attaching is
  /// always safe even if it yields no events.
  virtual void attach_observer(obs::EventBus* /*bus*/) {}

 protected:
  Simulator() = default;
  Simulator(const Simulator&) = default;
  Simulator& operator=(const Simulator&) = default;
  Simulator(Simulator&&) = default;
  Simulator& operator=(Simulator&&) = default;
};

}  // namespace pfair::engine
