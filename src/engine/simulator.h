// The scheduler-agnostic simulator interface.
//
// Every simulator stack in the repo — quantum-driven global Pfair,
// event-driven uniprocessor EDF/RM, the partitioned ensemble, global
// job-level EDF/RM, weighted round-robin, and CBS — implements this
// interface, so comparison drivers and tests can run the same workload
// through any of them and read the same engine::Metrics.
#pragma once

#include <cstdint>

#include "engine/metrics.h"
#include "util/types.h"

namespace pfair::obs {
class EventBus;
}  // namespace pfair::obs

namespace pfair::engine {

class Simulator {
 public:
  virtual ~Simulator() = default;

  /// Advances the simulation to (absolute) time `until`.  May be called
  /// repeatedly with increasing horizons.
  virtual void run_until(Time until) = 0;

  /// Current simulation time.
  [[nodiscard]] virtual Time now() const = 0;

  /// Unified counters (see engine/metrics.h for field semantics).
  [[nodiscard]] virtual const Metrics& metrics() const = 0;

  /// Admits a synchronous periodic task with the given worst-case
  /// execution and period (implicit deadline), releasing from the
  /// current time.  Returns false if this simulator cannot admit the
  /// task — e.g. admission is only supported before the simulation
  /// starts, or the task does not fit the remaining capacity.
  virtual bool admit(std::int64_t execution, std::int64_t period) = 0;

  /// Attaches a structured-event observer (see obs/bus.h).  The bus is
  /// borrowed, not owned, and must outlive the simulator; passing
  /// nullptr detaches.  Simulators that predate the obs layer ignore
  /// the call — the default implementation is a no-op — so attaching is
  /// always safe even if it yields no events.
  virtual void attach_observer(obs::EventBus* /*bus*/) {}

 protected:
  Simulator() = default;
  Simulator(const Simulator&) = default;
  Simulator& operator=(const Simulator&) = default;
  Simulator(Simulator&&) = default;
  Simulator& operator=(Simulator&&) = default;
};

}  // namespace pfair::engine
