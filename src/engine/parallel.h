// Parallel trial execution for the experiment benches.
//
// The paper's headline evidence (Figs. 3-4) averages thousands of random
// task sets per utilization point; until this layer existed every bench
// ran those trials on one core.  Two pieces change that:
//
//   - ThreadPool: a fixed set of N workers draining one job queue.
//     Destruction drains the queue (submitted work always runs); wait()
//     blocks until every submitted job finished and rethrows the first
//     exception any job raised.
//
//   - ParallelSweep: fans a trial function (trial_index, Rng&) -> Result
//     out across the pool in chunks and returns the results *in trial
//     order*.  Each trial draws from its own counter-based RNG stream
//     (Rng::stream — a pure function of (seed, point, trial), never of
//     scheduling order), so a sweep's output is bit-identical for
//     --jobs=1 and --jobs=N.  Downstream accumulators (RunningStats,
//     engine::Metrics, obs::Histogram) are merged serially by the caller
//     over the ordered results, keeping every reported mean / CI /
//     histogram byte-stable across worker counts.
//
// Thread-safety contract for trial functions: they may only touch their
// arguments and read shared immutable state (configs, OverheadParams,
// pre-built workloads).  All repo analysis and simulation entry points
// satisfy this — simulators are built per trial, and the workload
// generators draw only from the caller-owned Rng.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace pfair::engine {

class ThreadPool {
 public:
  /// `workers` <= 0 selects default_workers().
  explicit ThreadPool(int workers = 0);

  /// Drains the queue (pending jobs still run), then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// std::thread::hardware_concurrency, clamped to >= 1 (the function is
  /// allowed to return 0 on exotic platforms).
  [[nodiscard]] static int default_workers() noexcept;

  [[nodiscard]] int workers() const noexcept { return static_cast<int>(threads_.size()); }

  /// Enqueues a job.  Jobs run in submission order (per worker pickup).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished, then rethrows the
  /// first exception a job raised (if any; later ones are dropped).
  /// After a throwing wait() the pool is reusable — the error slot is
  /// cleared.
  void wait();

 private:
  void worker_loop(int index);

  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_job_;   ///< queue became non-empty / stopping
  std::condition_variable cv_done_;  ///< in_flight_ hit zero
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  ///< queued + currently running jobs
  std::exception_ptr first_error_;
  bool stop_ = false;
};

class ParallelSweep {
 public:
  /// `jobs` <= 1 runs trials inline on the calling thread (no pool, no
  /// threads — the baseline for the speedup measurements); `jobs` > 1
  /// builds a pool of that many workers, reused across run() calls.
  ParallelSweep(int jobs, std::uint64_t seed);

  [[nodiscard]] int jobs() const noexcept { return jobs_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Runs `trials` independent trials of sweep point `point` and returns
  /// their results in trial order.  `fn` is invoked as fn(trial, rng)
  /// where rng is the trial's private counter-based stream, derived as
  /// Rng::stream(derive_stream_seed(seed, point), trial) — i.e. a pure
  /// function of (seed, point, trial).  `point` keys the sweep point
  /// (e.g. task-count * 1000 + point-index) so every point draws from a
  /// disjoint stream family and adding points never shifts another
  /// point's workloads.  Result must be default-constructible; `fn` must
  /// be safe to invoke concurrently (see the header comment).
  template <typename Fn>
  auto run(std::uint64_t point, long long trials, Fn&& fn)
      -> std::vector<std::decay_t<decltype(fn(0LL, std::declval<Rng&>()))>> {
    using Result = std::decay_t<decltype(fn(0LL, std::declval<Rng&>()))>;
    const std::uint64_t point_seed = Rng::derive_stream_seed(seed_, point);
    std::vector<Result> out(trials > 0 ? static_cast<std::size_t>(trials) : 0);
    if (trials <= 0) return out;
    if (!pool_.has_value()) {
      for (long long t = 0; t < trials; ++t) {
        Rng rng = Rng::stream(point_seed, static_cast<std::uint64_t>(t));
        out[static_cast<std::size_t>(t)] = fn(t, rng);
      }
      return out;
    }
    // Chunked dispatch: a few chunks per worker balances load without
    // paying one queue round-trip per trial.
    const long long per_worker = static_cast<long long>(pool_->workers()) * 4;
    const long long chunk = std::max<long long>(1, (trials + per_worker - 1) / per_worker);
    for (long long lo = 0; lo < trials; lo += chunk) {
      const long long hi = std::min(trials, lo + chunk);
      pool_->submit([point_seed, lo, hi, &out, &fn] {
        for (long long t = lo; t < hi; ++t) {
          Rng rng = Rng::stream(point_seed, static_cast<std::uint64_t>(t));
          out[static_cast<std::size_t>(t)] = fn(t, rng);
        }
      });
    }
    pool_->wait();
    return out;
  }

 private:
  int jobs_;
  std::uint64_t seed_;
  std::optional<ThreadPool> pool_;  ///< engaged iff jobs_ > 1
};

}  // namespace pfair::engine
