// Scheduler-invocation wall-clock timing for the Fig.-2 experiments.
//
// The paper measures "the average cost of one scheduler invocation" by
// steady_clock-timing batches of invocations.  Every simulator used to
// duplicate the same chrono boilerplate; this timer centralizes it.
//
// The disabled path is branch-free: instead of testing a bool at every
// start()/stop(), the constructor binds `clock_` to either the real
// steady_clock reader or a stub that returns 0 without touching the
// clock.  stop() then unconditionally adds `clock_() - t0_` to
// `m.sched_ns_total` — 0.0 when disabled, which is bitwise invisible on
// the non-negative accumulator — so the hot path is one indirect call
// and one fp add either way, and the disabled path performs no clock
// syscall at all (pinned by tests/engine/overhead_timer_test.cpp via
// ScopedTestClock, which swaps in a counting clock).
#pragma once

#include <chrono>
#include <cstdint>

#include "engine/metrics.h"

namespace pfair::engine {

class OverheadTimer {
 public:
  /// Nanosecond clock source.  Timers bind one at construction.
  using Clock = std::uint64_t (*)() noexcept;

  explicit OverheadTimer(bool enabled) noexcept
      : clock_(enabled ? active_clock() : &null_clock), enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void start() noexcept { t0_ = clock_(); }

  /// Accumulates the nanoseconds since the matching start() into
  /// `m.sched_ns_total` and returns them (so callers can forward the
  /// same figure to an observer).  Returns 0.0 when disabled.
  double stop(Metrics& m) noexcept {
    const double ns = static_cast<double>(clock_() - t0_);
    m.sched_ns_total += ns;  // += 0.0 when disabled: accumulator unchanged
    return ns;
  }

  /// Times one call and returns the measured nanoseconds (0.0 when
  /// disabled): `timer.measure(metrics, [&] { ... });`
  template <typename F>
  double measure(Metrics& m, F&& f) {
    start();
    f();
    return stop(m);
  }

  /// Replaces the clock that *enabled* timers constructed afterwards
  /// will use; nullptr restores steady_clock.  Disabled timers always
  /// keep the 0-returning stub — that asymmetry is what lets a test
  /// prove the disabled path never reads any clock.
  static void set_clock_for_test(Clock c) noexcept { override_clock_ = c; }

 private:
  [[nodiscard]] static Clock active_clock() noexcept {
    return override_clock_ != nullptr ? override_clock_ : &steady_now_ns;
  }

  static std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  static std::uint64_t null_clock() noexcept { return 0; }

  inline static Clock override_clock_ = nullptr;

  Clock clock_;
  std::uint64_t t0_ = 0;
  bool enabled_ = false;
};

/// RAII clock override for tests; restores steady_clock on scope exit.
class ScopedTestClock {
 public:
  explicit ScopedTestClock(OverheadTimer::Clock c) noexcept {
    OverheadTimer::set_clock_for_test(c);
  }
  ~ScopedTestClock() { OverheadTimer::set_clock_for_test(nullptr); }
  ScopedTestClock(const ScopedTestClock&) = delete;
  ScopedTestClock& operator=(const ScopedTestClock&) = delete;
};

}  // namespace pfair::engine
