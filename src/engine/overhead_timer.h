// Scheduler-invocation wall-clock timing for the Fig.-2 experiments.
//
// The paper measures "the average cost of one scheduler invocation" by
// steady_clock-timing batches of invocations.  Every simulator used to
// duplicate the same chrono boilerplate; this timer centralizes it.
// When disabled it compiles down to a branch on a bool — the simulators
// construct it unconditionally and pay nothing unless overhead
// measurement was requested.
#pragma once

#include <chrono>

#include "engine/metrics.h"

namespace pfair::engine {

class OverheadTimer {
 public:
  explicit OverheadTimer(bool enabled) noexcept : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void start() noexcept {
    if (enabled_) t0_ = std::chrono::steady_clock::now();
  }

  /// Accumulates the nanoseconds since the matching start() into
  /// `m.sched_ns_total` and returns them (so callers can forward the
  /// same figure to an observer).  Returns 0.0 when disabled.
  double stop(Metrics& m) noexcept {
    if (!enabled_) return 0.0;
    const auto t1 = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0_).count());
    m.sched_ns_total += ns;
    return ns;
  }

  /// Times one call and returns the measured nanoseconds (0.0 when
  /// disabled): `timer.measure(metrics, [&] { ... });`
  template <typename F>
  double measure(Metrics& m, F&& f) {
    start();
    f();
    return stop(m);
  }

 private:
  bool enabled_ = false;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace pfair::engine
