#include "engine/compare.h"

#include <utility>

#include "sim/global_job_sim.h"

namespace pfair::engine {

std::vector<CompareResult> compare_schedulers(const std::vector<UniTask>& workload,
                                              const std::vector<SchedulerSpec>& specs,
                                              Time horizon) {
  std::vector<CompareResult> out;
  out.reserve(specs.size());
  for (const SchedulerSpec& spec : specs) {
    CompareResult r;
    r.name = spec.name;
    if (std::unique_ptr<Simulator> sim = spec.make(workload)) {
      sim->run_until(horizon);
      r.feasible = true;
      r.metrics = sim->metrics();
    }
    out.push_back(std::move(r));
  }
  return out;
}

SchedulerSpec pfair_spec(std::string name, SimConfig config) {
  return {std::move(name),
          [config](const std::vector<UniTask>& workload) -> std::unique_ptr<Simulator> {
            auto sim = std::make_unique<PfairSimulator>(config);
            for (const UniTask& t : workload) {
              if (!sim->admit(t.execution, t.period)) return nullptr;
            }
            return sim;
          }};
}

SchedulerSpec pd2_spec(int processors) {
  SimConfig config;
  config.processors = processors;
  config.algorithm = Algorithm::kPD2;
  return pfair_spec("PD2", config);
}

SchedulerSpec partitioned_spec(std::string name, PartitionedConfig config) {
  return {std::move(name),
          [config](const std::vector<UniTask>& workload) -> std::unique_ptr<Simulator> {
            auto sim = std::make_unique<PartitionedSimulator>(workload, config);
            if (!sim->all_tasks_placed()) return nullptr;  // bin-packing failure
            return sim;
          }};
}

SchedulerSpec global_job_spec(int processors, UniAlgorithm algorithm) {
  return {algorithm == UniAlgorithm::kEDF ? "global-EDF" : "global-RM",
          [processors, algorithm](const std::vector<UniTask>& workload)
              -> std::unique_ptr<Simulator> {
            return std::make_unique<GlobalJobSimulator>(workload, processors, algorithm);
          }};
}

SchedulerSpec uniproc_spec(std::string name, UniSimConfig config) {
  return {std::move(name),
          [config](const std::vector<UniTask>& workload) -> std::unique_ptr<Simulator> {
            return std::make_unique<UniprocSimulator>(workload, config);
          }};
}

SchedulerSpec wrr_spec(WrrConfig config) {
  return {"WRR",
          [config](const std::vector<UniTask>& workload) -> std::unique_ptr<Simulator> {
            auto sim = std::make_unique<WrrSimulator>(TaskSet{}, config);
            for (const UniTask& t : workload) {
              if (!sim->admit(t.execution, t.period)) return nullptr;
            }
            return sim;
          }};
}

}  // namespace pfair::engine
