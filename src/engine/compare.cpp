#include "engine/compare.h"

#include <utility>

namespace pfair::engine {

std::vector<CompareResult> compare_schedulers(const std::vector<UniTask>& workload,
                                              const std::vector<SchedulerSpec>& specs,
                                              Time horizon) {
  std::vector<CompareResult> out;
  out.reserve(specs.size());
  for (const SchedulerSpec& spec : specs) {
    CompareResult r;
    r.name = spec.name;
    if (std::unique_ptr<Simulator> sim = spec.make(workload)) {
      // The loader reports every rejected task through the metrics; a
      // scheduler that dropped any task never runs — comparing partial
      // task systems would be apples to oranges — but its admission
      // counters stay visible instead of vanishing with the simulator.
      r.metrics = sim->metrics();
      r.feasible = r.metrics.tasks_rejected == 0;
      if (r.feasible) {
        sim->run_until(horizon);
        r.metrics = sim->metrics();
      }
    }
    out.push_back(std::move(r));
  }
  return out;
}

SchedulerSpec kind_spec(std::string name, SchedulerKind kind, SimulatorConfig config) {
  return {std::move(name),
          [kind, config](const std::vector<UniTask>& workload) -> std::unique_ptr<Simulator> {
            std::unique_ptr<Simulator> sim = make_simulator(kind, config);
            // Rejected admission = the stack cannot take this workload
            // (capacity, bin-packing failure, ...): infeasible.  Every
            // task is still offered, so metrics().tasks_rejected shows
            // how many the scheduler turned away instead of silently
            // dropping them.
            for (const UniTask& t : workload)
              sim->admit(task_spec(t.execution, t.period));
            return sim;
          }};
}

SchedulerSpec pfair_spec(std::string name, PfairConfig config) {
  SimulatorConfig sc;
  sc.pfair = config;
  return kind_spec(std::move(name), SchedulerKind::kPfair, std::move(sc));
}

SchedulerSpec pd2_spec(int processors) {
  PfairConfig config;
  config.processors = processors;
  config.algorithm = Algorithm::kPD2;
  return pfair_spec("PD2", config);
}

SchedulerSpec partitioned_spec(std::string name, PartitionConfig config) {
  SimulatorConfig sc;
  sc.partitioned = config;
  return kind_spec(std::move(name), SchedulerKind::kPartitioned, std::move(sc));
}

SchedulerSpec global_job_spec(int processors, UniAlgorithm algorithm) {
  SimulatorConfig sc;
  sc.global_job = GlobalJobConfig{processors, algorithm};
  return kind_spec(algorithm == UniAlgorithm::kEDF ? "global-EDF" : "global-RM",
                   SchedulerKind::kGlobalJob, std::move(sc));
}

SchedulerSpec uniproc_spec(std::string name, UniSimConfig config) {
  SimulatorConfig sc;
  sc.uniproc = config;
  return kind_spec(std::move(name), SchedulerKind::kUniproc, std::move(sc));
}

SchedulerSpec wrr_spec(WrrConfig config) {
  SimulatorConfig sc;
  sc.wrr = config;
  return kind_spec("WRR", SchedulerKind::kWrr, std::move(sc));
}

SchedulerSpec bf_spec(BfConfig config) {
  SimulatorConfig sc;
  sc.bf = config;
  return kind_spec("BF", SchedulerKind::kBf, std::move(sc));
}

SchedulerSpec run_spec(RunConfig config) {
  SimulatorConfig sc;
  sc.run = config;
  return kind_spec("RUN", SchedulerKind::kRun, std::move(sc));
}

}  // namespace pfair::engine
