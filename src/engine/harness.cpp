#include "engine/harness.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/parallel.h"
#include "obs/prof.h"
#include "obs/registry.h"

namespace pfair::engine {

namespace {

/// JSON string escaping (control characters, quote, backslash).
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Doubles as JSON numbers; non-finite values (which JSON cannot
/// represent) become null.
std::string number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void append_value(std::string& out, const ExperimentHarness::Value& val) {
  if (const auto* d = std::get_if<double>(&val.v)) {
    out += number(*d);
  } else if (const auto* i = std::get_if<long long>(&val.v)) {
    out += std::to_string(*i);
  } else if (const auto* s = std::get_if<std::string>(&val.v)) {
    out += '"';
    out += escape(*s);
    out += '"';
  } else if (const auto* st = std::get_if<RunningStats>(&val.v)) {
    out += "{\"mean\":" + number(st->mean()) + ",\"ci99\":" + number(st->ci99_halfwidth()) +
           ",\"min\":" + number(st->min()) + ",\"max\":" + number(st->max()) +
           ",\"n\":" + std::to_string(st->count()) + "}";
  } else {
    const auto& h = std::get<obs::Histogram>(val.v);
    out += "{\"edges\":[";
    for (std::size_t k = 0; k < h.edges().size(); ++k) {
      if (k > 0) out += ',';
      out += number(h.edges()[k]);
    }
    out += "],\"counts\":[";
    for (std::size_t k = 0; k < h.bucket_count(); ++k) {
      if (k > 0) out += ',';
      out += std::to_string(h.count(k));
    }
    out += "],\"underflow\":" + std::to_string(h.underflow()) +
           ",\"overflow\":" + std::to_string(h.overflow()) +
           ",\"total\":" + std::to_string(h.total()) +
           ",\"p50\":" + number(h.p50()) + ",\"p95\":" + number(h.p95()) +
           ",\"p99\":" + number(h.p99()) + "}";
  }
}

template <typename KvContainer>  // vector<pair> rows / map params
void append_object(std::string& out, const KvContainer& kv) {
  out += '{';
  bool first = true;
  for (const auto& [key, val] : kv) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += escape(key);
    out += "\":";
    append_value(out, val);
  }
  out += '}';
}

/// Strict integer / double parses; nullptr-safe.
bool parse_ll(const std::string& s, long long& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

ExperimentHarness::ExperimentHarness(std::string name, int argc, char** argv)
    : name_(std::move(name)) {
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--", 2) != 0) continue;  // positional args are gone
    const char* body = a + 2;
    const char* eq = std::strchr(body, '=');
    std::string key;
    std::string value;
    if (eq != nullptr) {
      key.assign(body, static_cast<std::size_t>(eq - body));
      value.assign(eq + 1);
    } else {
      key.assign(body);
      // "--flag value" form: consume the next token iff it does not
      // itself look like a flag.
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        value.assign(argv[++i]);
      }
    }
    if (key == "json") {
      json_ = true;
      json_file_ = value;  // may be empty -> default path
      continue;
    }
    if (key == "prof") {
      // Attach self-profiling.  Like --jobs/--shards, never echoed into
      // params: the parity contract is that --prof=FILE leaves the BENCH
      // JSON byte-identical (the snapshot goes to FILE), while a bare
      // --prof folds the snapshot into the report as a "prof" member.
      prof_ = true;
      prof_file_ = value;
      obs::prof::set_enabled(true);
      continue;
    }
    args_.emplace_back(std::move(key), std::move(value));
  }
}

const std::string* ExperimentHarness::raw_flag(const std::string& key) const {
  for (const auto& [k, v] : args_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void ExperimentHarness::record_param(const std::string& key, Value v) const {
  const std::lock_guard<std::mutex> lock(params_mutex_);
  params_.emplace(key, std::move(v));  // first lookup wins; map keeps keys sorted
}

long long ExperimentHarness::flag(const std::string& key, long long fallback) const {
  long long out = fallback;
  if (const std::string* raw = raw_flag(key)) parse_ll(*raw, out);
  record_param(key, Value{out});
  return out;
}

double ExperimentHarness::flag_double(const std::string& key, double fallback) const {
  double out = fallback;
  if (const std::string* raw = raw_flag(key)) parse_double(*raw, out);
  record_param(key, Value{out});
  return out;
}

std::string ExperimentHarness::flag_string(const std::string& key,
                                           const std::string& fallback) const {
  std::string out = fallback;
  if (const std::string* raw = raw_flag(key)) out = *raw;
  record_param(key, Value{out});
  return out;
}

int ExperimentHarness::jobs() const {
  long long out = 0;
  if (const std::string* raw = raw_flag("jobs")) parse_ll(*raw, out);
  // Not recorded as a param (see header): the report must not depend on
  // the worker count.
  return out > 0 ? static_cast<int>(out) : ThreadPool::default_workers();
}

int ExperimentHarness::shards() const {
  long long out = 0;
  if (const std::string* raw = raw_flag("shards")) parse_ll(*raw, out);
  // Not recorded as a param (see header): shard-parity checks cmp the
  // --shards=1 and --shards=N reports byte for byte.
  return out > 0 ? static_cast<int>(out) : 1;
}

long long ExperimentHarness::trials(long long fallback) const {
  return flag("trials", fallback);
}

long long ExperimentHarness::horizon(long long fallback) const {
  return flag("horizon", fallback);
}

std::uint64_t ExperimentHarness::seed(std::uint64_t fallback) const {
  return static_cast<std::uint64_t>(flag("seed", static_cast<long long>(fallback)));
}

ExperimentHarness::Row& ExperimentHarness::Row::set(const std::string& key, double v) {
  cells_.emplace_back(key, Value{v});
  return *this;
}
ExperimentHarness::Row& ExperimentHarness::Row::set(const std::string& key, long long v) {
  cells_.emplace_back(key, Value{v});
  return *this;
}
ExperimentHarness::Row& ExperimentHarness::Row::set(const std::string& key,
                                                    const std::string& v) {
  cells_.emplace_back(key, Value{v});
  return *this;
}
ExperimentHarness::Row& ExperimentHarness::Row::set(const std::string& key,
                                                    const RunningStats& s) {
  cells_.emplace_back(key, Value{s});
  return *this;
}
ExperimentHarness::Row& ExperimentHarness::Row::set(const std::string& key,
                                                    const obs::Histogram& h) {
  cells_.emplace_back(key, Value{h});
  return *this;
}

ExperimentHarness::Row& ExperimentHarness::add_row() {
  rows_.emplace_back();
  return rows_.back();
}

std::string ExperimentHarness::json_path() const {
  return json_file_.empty() ? "BENCH_" + name_ + ".json" : json_file_;
}

std::string ExperimentHarness::to_json() const {
  std::string out = "{\"bench\":\"" + escape(name_) + "\",\"params\":";
  {
    const std::lock_guard<std::mutex> lock(params_mutex_);
    append_object(out, params_);
  }
  out += ",\"rows\":[";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (i > 0) out += ',';
    append_object(out, rows_[i].cells_);
  }
  out += "]";
  if (prof_ && prof_file_.empty()) {
    // Bare --prof: fold the registry snapshot into the report.  The
    // snapshot carries wall-clock figures, so this form is excluded from
    // byte-parity comparisons — those use --prof=FILE.
    obs::prof::snapshot_into(obs::MetricsRegistry::global());
    out += ",\"prof\":" + obs::MetricsRegistry::global().snapshot().dump();
  }
  out += "}\n";
  return out;
}

int ExperimentHarness::finish(int exit_code) {
  if (prof_ && !prof_file_.empty()) {
    obs::prof::snapshot_into(obs::MetricsRegistry::global());
    std::FILE* pf = std::fopen(prof_file_.c_str(), "w");
    if (pf == nullptr) {
      std::fprintf(stderr, "harness: cannot write %s\n", prof_file_.c_str());
      if (exit_code == 0) exit_code = 1;
    } else {
      const std::string doc = obs::MetricsRegistry::global().snapshot_json();
      std::fwrite(doc.data(), 1, doc.size(), pf);
      std::fclose(pf);
      std::printf("# wrote %s (registry snapshot)\n", prof_file_.c_str());
    }
  }
  if (!json_) return exit_code;
  const std::string path = json_path();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "harness: cannot write %s\n", path.c_str());
    return exit_code != 0 ? exit_code : 1;
  }
  const std::string doc = to_json();
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  std::printf("# wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  return exit_code;
}

}  // namespace pfair::engine
