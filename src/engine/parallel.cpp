#include "engine/parallel.h"

#include "obs/prof.h"
#include "obs/registry.h"

namespace pfair::engine {

ThreadPool::ThreadPool(int workers) {
  const int n = workers > 0 ? workers : default_workers();
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::default_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(job));
    ++in_flight_;
  }
  cv_job_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_ != nullptr) {
    const std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(int index) {
  obs::prof::set_worker_index(index);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (queue_.empty() && !stop_ && obs::prof::enabled()) {
      static obs::Counter& idle = obs::MetricsRegistry::global().counter("pool.idle_waits");
      idle.add();
    }
    cv_job_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    std::function<void()> job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    std::exception_ptr err;
    try {
      const obs::prof::ProfScope scope(obs::prof::Phase::kPoolJob, index);
      job();
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err != nullptr && first_error_ == nullptr) first_error_ = err;
    if (--in_flight_ == 0) cv_done_.notify_all();
  }
}

ParallelSweep::ParallelSweep(int jobs, std::uint64_t seed)
    : jobs_(jobs > 0 ? jobs : ThreadPool::default_workers()), seed_(seed) {
  if (jobs_ > 1) pool_.emplace(jobs_);
}

}  // namespace pfair::engine
