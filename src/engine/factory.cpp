#include "engine/factory.h"

#include <cassert>

namespace pfair::engine {

namespace {

struct RegistryEntry {
  SchedulerKind kind;
  const char* name;
  std::unique_ptr<Simulator> (*make)(const SimulatorConfig&);
};

// The registry: one row per simulator stack.  Rows construct *empty*
// simulators — workloads arrive through Simulator::admit(), which every
// stack accepts before its first slot/event runs.
constexpr RegistryEntry kRegistry[] = {
    {SchedulerKind::kPfair, "pfair",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<PfairSimulator>(c.pfair);
     }},
    {SchedulerKind::kPartitioned, "partitioned",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<PartitionedSimulator>(std::vector<UniTask>{}, c.partitioned);
     }},
    {SchedulerKind::kGlobalJob, "global-job",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<GlobalJobSimulator>(std::vector<UniTask>{}, c.global_job);
     }},
    {SchedulerKind::kUniproc, "uniproc",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<UniprocSimulator>(std::vector<UniTask>{}, c.uniproc);
     }},
    {SchedulerKind::kWrr, "wrr",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<WrrSimulator>(TaskSet{}, c.wrr);
     }},
    {SchedulerKind::kCbs, "cbs",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<CbsSimulator>(std::vector<UniTask>{}, c.cbs);
     }},
};

const RegistryEntry& entry(SchedulerKind kind) noexcept {
  for (const RegistryEntry& e : kRegistry) {
    if (e.kind == kind) return e;
  }
  assert(false && "unregistered SchedulerKind");
  return kRegistry[0];
}

}  // namespace

const char* to_string(SchedulerKind kind) noexcept { return entry(kind).name; }

std::optional<SchedulerKind> scheduler_kind_from_string(std::string_view name) noexcept {
  for (const RegistryEntry& e : kRegistry) {
    if (name == e.name) return e.kind;
  }
  return std::nullopt;
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = [] {
    std::vector<SchedulerKind> out;
    for (const RegistryEntry& e : kRegistry) out.push_back(e.kind);
    return out;
  }();
  return kinds;
}

std::unique_ptr<Simulator> make_simulator(SchedulerKind kind, const SimulatorConfig& config) {
  return entry(kind).make(config);
}

}  // namespace pfair::engine
