#include "engine/factory.h"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace pfair::engine {

namespace {

struct RegistryEntry {
  SchedulerKind kind;
  const char* name;
  std::unique_ptr<Simulator> (*make)(const SimulatorConfig&);
};

// The registry: one row per simulator stack.  Rows construct *empty*
// simulators — workloads arrive through Simulator::admit(), which every
// stack accepts before its first slot/event runs.
constexpr RegistryEntry kRegistry[] = {
    {SchedulerKind::kPfair, "pfair",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       PfairConfig pc = c.pfair;
       if (c.shards > 0) pc.shards = c.shards;
       return std::make_unique<PfairSimulator>(pc);
     }},
    {SchedulerKind::kPartitioned, "partitioned",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<PartitionedSimulator>(std::vector<UniTask>{}, c.partitioned);
     }},
    {SchedulerKind::kGlobalJob, "global-job",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<GlobalJobSimulator>(std::vector<UniTask>{}, c.global_job);
     }},
    {SchedulerKind::kUniproc, "uniproc",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<UniprocSimulator>(std::vector<UniTask>{}, c.uniproc);
     }},
    {SchedulerKind::kWrr, "wrr",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<WrrSimulator>(TaskSet{}, c.wrr);
     }},
    {SchedulerKind::kCbs, "cbs",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<CbsSimulator>(std::vector<UniTask>{}, c.cbs);
     }},
    {SchedulerKind::kBf, "bf",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<BfSimulator>(TaskSet{}, c.bf);
     }},
    {SchedulerKind::kRun, "run",
     [](const SimulatorConfig& c) -> std::unique_ptr<Simulator> {
       return std::make_unique<RunSimulator>(c.run);
     }},
};

const RegistryEntry& entry(SchedulerKind kind) noexcept {
  for (const RegistryEntry& e : kRegistry) {
    if (e.kind == kind) return e;
  }
  assert(false && "unregistered SchedulerKind");
  return kRegistry[0];
}

[[noreturn]] void reject(SchedulerKind kind, const char* field, long long got) {
  std::ostringstream os;
  os << "make_simulator(" << entry(kind).name << "): " << field << " must be >= 1 (got "
     << got << ")";
  throw std::invalid_argument(os.str());
}

// Rejects configs no stack can run on — the mistakes a kind-keyed sweep
// table makes silently (a zero in an unused column picked up by the
// wrong kind).  Checked here, once, instead of in six constructors.
void validate(SchedulerKind kind, const SimulatorConfig& c) {
  if (c.shards < 0) {
    std::ostringstream os;
    os << "make_simulator(" << entry(kind).name << "): shards must be >= 0 (got "
       << c.shards << "; 0 defers to the per-kind config)";
    throw std::invalid_argument(os.str());
  }
  if (c.shards > 1 && kind != SchedulerKind::kPfair) {
    // Only the pfair SoA slot kernel is sharded.  Accepting (and
    // ignoring) a parallelism request here would let a sweep table
    // silently misreport what it measured, so this is a config error on
    // the same footing as processors < 1.
    std::ostringstream os;
    os << "make_simulator(" << entry(kind).name << "): shards > 1 is only "
       << "supported for pfair (got " << c.shards
       << "; this kind has no sharded kernel)";
    throw std::invalid_argument(os.str());
  }
  switch (kind) {
    case SchedulerKind::kPfair:
      if (c.pfair.processors < 1) reject(kind, "processors", c.pfair.processors);
      if (c.pfair.shards < 1) reject(kind, "pfair.shards", c.pfair.shards);
      break;
    case SchedulerKind::kPartitioned:
      if (c.partitioned.max_processors < 1)
        reject(kind, "max_processors", c.partitioned.max_processors);
      break;
    case SchedulerKind::kGlobalJob:
      if (c.global_job.processors < 1) reject(kind, "processors", c.global_job.processors);
      break;
    case SchedulerKind::kUniproc:
      break;  // nothing configurable can be out of range
    case SchedulerKind::kWrr:
      if (c.wrr.processors < 1) reject(kind, "processors", c.wrr.processors);
      if (c.wrr.frame < 1) reject(kind, "frame", c.wrr.frame);
      break;
    case SchedulerKind::kCbs:
      for (std::size_t i = 0; i < c.cbs.servers.size(); ++i) {
        const CbsServerSpec& s = c.cbs.servers[i];
        if (s.budget < 1 || s.period < 1) {
          std::ostringstream os;
          os << "make_simulator(cbs): server " << i << " must have budget >= 1 and "
             << "period >= 1 (got Q=" << s.budget << ", T=" << s.period << ")";
          throw std::invalid_argument(os.str());
        }
      }
      break;
    case SchedulerKind::kBf:
      if (c.bf.processors < 1) reject(kind, "processors", c.bf.processors);
      break;
    case SchedulerKind::kRun:
      if (c.run.processors < 1) reject(kind, "processors", c.run.processors);
      break;
  }
}

}  // namespace

const char* to_string(SchedulerKind kind) noexcept { return entry(kind).name; }

std::optional<SchedulerKind> scheduler_kind_from_string(std::string_view name) noexcept {
  for (const RegistryEntry& e : kRegistry) {
    if (name == e.name) return e.kind;
  }
  return std::nullopt;
}

const std::vector<SchedulerKind>& all_scheduler_kinds() {
  static const std::vector<SchedulerKind> kinds = [] {
    std::vector<SchedulerKind> out;
    for (const RegistryEntry& e : kRegistry) out.push_back(e.kind);
    return out;
  }();
  return kinds;
}

std::unique_ptr<Simulator> make_simulator(SchedulerKind kind, const SimulatorConfig& config) {
  validate(kind, config);
  return entry(kind).make(config);
}

}  // namespace pfair::engine
