// Quantum-size tradeoff analysis (paper Sec. 4, "Challenges in Pfair
// scheduling").
//
// PD2 requires execution costs to be rounded up to whole quanta, so a
// *large* quantum wastes capacity to rounding ("if a task has a small
// execution requirement epsilon, it must be increased to 1 [quantum]").
// A *small* quantum reduces rounding loss but multiplies per-quantum
// scheduling/context-switch overhead (Eq. (3)).  The paper poses the
// resulting optimisation — "these trade-offs must be carefully analyzed
// to determine an optimal quantum size" — and this module performs that
// analysis for a concrete task set: sweep q, decompose the inflated
// utilization into rounding loss and overhead loss, and report the
// processor count at each q.
#pragma once

#include <optional>
#include <vector>

#include "overhead/inflation.h"

namespace pfair {

struct QuantumSweepPoint {
  double quantum_us = 0.0;
  std::optional<int> processors;   ///< PD2 minimum processors at this q
  double inflated_utilization = 0.0;  ///< sum of quantised inflated weights
  double rounding_loss = 0.0;   ///< utilization added by ceil() rounding only
  double overhead_loss = 0.0;   ///< utilization added by Eq.(3) inflation only
};

/// Evaluates one quantum size.  `m_hint` is the processor count used
/// for the (m-dependent) scheduling-cost lookup; pass the no-overhead
/// minimum for a fair sweep.
[[nodiscard]] QuantumSweepPoint evaluate_quantum(const std::vector<OhTask>& tasks,
                                                 OverheadParams params, double quantum_us,
                                                 int m_hint);

/// Sweeps the given quantum sizes and returns one point per size.
[[nodiscard]] std::vector<QuantumSweepPoint> sweep_quantum_sizes(
    const std::vector<OhTask>& tasks, const OverheadParams& params,
    const std::vector<double>& quanta_us);

/// The q (among the given candidates) minimising the processor count,
/// ties broken by lower inflated utilization.  nullopt if no candidate
/// is feasible.
[[nodiscard]] std::optional<double> best_quantum(const std::vector<OhTask>& tasks,
                                                 const OverheadParams& params,
                                                 const std::vector<double>& quanta_us);

}  // namespace pfair
