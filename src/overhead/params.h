// System-overhead parameters (paper Sec. 4).
//
// Three overheads are modelled, exactly as in the paper:
//   - scheduling overhead S_A: time per invocation of scheduling
//     algorithm A (a function of the task count, and for PD2 also of the
//     processor count, since its decisions are made sequentially by one
//     scheduler);
//   - context-switch cost C (paper: 5 us; modern range 1-10 us);
//   - cache-related preemption delay D(T) (paper: drawn uniformly from
//     [0, 100] us, mean 33.3 us).
//
// The default scheduling-cost tables mirror the magnitudes of the
// paper's Fig. 2 measurements; `from_measurement` lets benches replace
// them with values measured on the host (bench/fig2*), which is what the
// paper itself did.
#pragma once

#include <array>
#include <cstddef>

namespace pfair {

class SchedCostModel {
 public:
  /// Task counts at which costs are tabulated (the paper's N values).
  static constexpr std::array<double, 9> kTaskCounts = {15,  30,  50,  75, 100,
                                                        250, 500, 750, 1000};
  /// Processor counts at which PD2 costs are tabulated.
  static constexpr std::array<double, 5> kProcCounts = {1, 2, 4, 8, 16};

  /// Paper-magnitude defaults (us per invocation).
  [[nodiscard]] static SchedCostModel paper_defaults();

  /// EDF cost per invocation with n tasks on one processor (us).
  [[nodiscard]] double edf_us(double n) const;

  /// PD2 cost per invocation with n tasks on m processors (us).
  [[nodiscard]] double pd2_us(double n, int m) const;

  /// Overrides one PD2 table row / the EDF table with measured values
  /// (same layout as kTaskCounts).
  void set_edf_table(const std::array<double, 9>& us);
  void set_pd2_table(std::size_t proc_index, const std::array<double, 9>& us);

 private:
  std::array<double, 9> edf_{};
  // pd2_[i][j]: cost at kProcCounts[i] processors, kTaskCounts[j] tasks.
  std::array<std::array<double, 9>, 5> pd2_{};
};

/// All Eq.-(3) inputs bundled together.
struct OverheadParams {
  double context_switch_us = 5.0;  ///< C
  double quantum_us = 1000.0;      ///< q (PD2 quantum, paper: 1 ms)
  SchedCostModel sched = SchedCostModel::paper_defaults();
};

}  // namespace pfair
