#include "overhead/calibrate.h"

#include "sim/pfair_sim.h"
#include "uniproc/uni_sim.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace pfair {

namespace {

/// Integer task set shared by both measurement backends.
std::vector<Task> calibration_taskset(Rng& rng, std::size_t n, double u_cap) {
  const std::vector<UniTask> uni = generate_uni_tasks(rng, n, u_cap, 20000);
  std::vector<Task> out;
  out.reserve(uni.size());
  for (const UniTask& t : uni) out.push_back(make_task(t.execution, t.period));
  return out;
}

}  // namespace

SchedCostModel calibrate_sched_costs(const CalibrationConfig& config) {
  SchedCostModel model;  // overwritten entirely below
  Rng master(config.seed);

  std::array<double, 9> edf_row{};
  std::array<std::array<double, 9>, 5> pd2_rows{};

  for (std::size_t ni = 0; ni < SchedCostModel::kTaskCounts.size(); ++ni) {
    const auto n = static_cast<std::size_t>(SchedCostModel::kTaskCounts[ni]);
    double edf_sum = 0.0;
    std::array<double, 5> pd2_sum{};
    for (std::int64_t s = 0; s < config.sets; ++s) {
      Rng rng = master.fork(static_cast<std::uint64_t>(ni) * 64 +
                            static_cast<std::uint64_t>(s));
      // EDF on one processor, util <= 1.
      {
        const std::vector<Task> tasks = calibration_taskset(rng, n, 0.98);
        std::vector<UniTask> uni;
        uni.reserve(tasks.size());
        for (const Task& t : tasks) uni.push_back({t.execution, t.period});
        UniSimConfig uc;
        uc.algorithm = UniAlgorithm::kEDF;
        uc.measure_overhead = true;
        UniprocSimulator sim(std::move(uni), uc);
        sim.run_until(config.horizon * 20);
        edf_sum += sim.metrics().avg_sched_ns() / 1000.0;
      }
      // PD2 at each tabulated processor count, util <= 0.95 m.
      for (std::size_t mi = 0; mi < SchedCostModel::kProcCounts.size(); ++mi) {
        const int m = static_cast<int>(SchedCostModel::kProcCounts[mi]);
        const std::vector<Task> tasks =
            calibration_taskset(rng, n, 0.95 * static_cast<double>(m));
        PfairConfig sc;
        sc.processors = m;
        sc.measure_overhead = true;
        PfairSimulator sim(sc);
        for (const Task& t : tasks) sim.add_task(t);
        sim.run_until(config.horizon);
        pd2_sum[mi] += sim.metrics().avg_sched_ns() / 1000.0;
      }
    }
    edf_row[ni] = edf_sum / static_cast<double>(config.sets);
    for (std::size_t mi = 0; mi < pd2_rows.size(); ++mi)
      pd2_rows[mi][ni] = pd2_sum[mi] / static_cast<double>(config.sets);
  }

  model.set_edf_table(edf_row);
  for (std::size_t mi = 0; mi < pd2_rows.size(); ++mi)
    model.set_pd2_table(mi, pd2_rows[mi]);
  return model;
}

}  // namespace pfair
