#include "overhead/params.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pfair {

namespace {

/// Piecewise-linear interpolation over a tabulated grid; clamped at the
/// ends (costs outside the measured range are not extrapolated).
template <std::size_t N>
[[nodiscard]] double interp(const std::array<double, N>& xs, const std::array<double, N>& ys,
                            double x) {
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  for (std::size_t i = 1; i < N; ++i) {
    if (x <= xs[i]) {
      const double f = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
      return ys[i - 1] + f * (ys[i] - ys[i - 1]);
    }
  }
  return ys.back();
}

}  // namespace

SchedCostModel SchedCostModel::paper_defaults() {
  SchedCostModel m;
  // Magnitudes read off the paper's Fig. 2 (933 MHz platform):
  // EDF stays ~2 us even at 1000 tasks; PD2 reaches ~7.5 us at 1000
  // tasks on one processor and ~55 us at 1000 tasks on 16 processors.
  m.edf_ = {0.5, 0.6, 0.7, 0.85, 1.0, 1.3, 1.6, 1.8, 2.0};
  m.pd2_[0] = {0.8, 1.0, 1.3, 1.6, 2.0, 3.4, 5.0, 6.3, 7.5};    // m = 1
  m.pd2_[1] = {1.1, 1.4, 1.9, 2.4, 2.9, 5.0, 7.4, 9.3, 11.0};   // m = 2
  m.pd2_[2] = {1.6, 2.1, 2.8, 3.6, 4.4, 7.6, 11.2, 14.2, 17.0}; // m = 4
  m.pd2_[3] = {2.6, 3.4, 4.6, 5.9, 7.2, 12.6, 18.7, 23.8, 28.5};// m = 8
  m.pd2_[4] = {4.5, 6.0, 8.1, 10.4, 12.7, 22.5, 33.8, 43.5, 52.5};  // m = 16
  return m;
}

double SchedCostModel::edf_us(double n) const {
  return interp(kTaskCounts, edf_, n);
}

double SchedCostModel::pd2_us(double n, int m) const {
  assert(m >= 1);
  const double mf = static_cast<double>(m);
  if (mf <= kProcCounts.front()) return interp(kTaskCounts, pd2_.front(), n);
  if (mf >= kProcCounts.back()) {
    // Beyond 16 processors the cost is clamped at the measured
    // 16-processor row, exactly as task counts are clamped at 1000.
    // (Linearly extrapolating the selection loop's m-dependence instead
    // makes PD2's per-quantum overhead eat double-digit percentages of
    // a 1 ms quantum around m ~ 100 and diverges the Fig.-3 search —
    // behaviour absent from the paper's figures, which plot m <= ~70
    // using measured costs only.)
    return interp(kTaskCounts, pd2_.back(), n);
  }
  for (std::size_t i = 1; i < kProcCounts.size(); ++i) {
    if (mf <= kProcCounts[i]) {
      const double lo = interp(kTaskCounts, pd2_[i - 1], n);
      const double hi = interp(kTaskCounts, pd2_[i], n);
      const double f = (mf - kProcCounts[i - 1]) / (kProcCounts[i] - kProcCounts[i - 1]);
      return lo + f * (hi - lo);
    }
  }
  return interp(kTaskCounts, pd2_.back(), n);
}

void SchedCostModel::set_edf_table(const std::array<double, 9>& us) { edf_ = us; }

void SchedCostModel::set_pd2_table(std::size_t proc_index, const std::array<double, 9>& us) {
  assert(proc_index < pd2_.size());
  pd2_[proc_index] = us;
}

}  // namespace pfair
