#include "overhead/quantum_tradeoff.h"

#include <algorithm>
#include <cmath>

namespace pfair {

QuantumSweepPoint evaluate_quantum(const std::vector<OhTask>& tasks, OverheadParams params,
                                   double quantum_us, int m_hint) {
  QuantumSweepPoint pt;
  pt.quantum_us = quantum_us;
  params.quantum_us = quantum_us;

  double raw = 0.0;
  double rounded_only = 0.0;  // quantised but with zero overheads
  double inflated = 0.0;
  bool feasible = true;
  for (const OhTask& t : tasks) {
    raw += t.utilization();
    const double pq = std::ceil(t.period_us / quantum_us - 1e-9);
    const double eq = std::max(1.0, std::ceil(t.execution_us / quantum_us - 1e-9));
    rounded_only += eq / pq;
    const Pd2Inflation inf = inflate_pd2(t, params, tasks.size(), m_hint);
    if (!inf.feasible) {
      feasible = false;
      break;
    }
    inflated += inf.weight();
  }
  if (!feasible) {
    pt.processors = std::nullopt;
    pt.inflated_utilization = 0.0;
    return pt;
  }
  pt.inflated_utilization = inflated;
  pt.rounding_loss = rounded_only - raw;
  pt.overhead_loss = inflated - rounded_only;
  pt.processors = pd2_min_processors(tasks, params);
  return pt;
}

std::vector<QuantumSweepPoint> sweep_quantum_sizes(const std::vector<OhTask>& tasks,
                                                   const OverheadParams& params,
                                                   const std::vector<double>& quanta_us) {
  double raw = 0.0;
  for (const OhTask& t : tasks) raw += t.utilization();
  const int m_hint = std::max(1, static_cast<int>(std::ceil(raw)));
  std::vector<QuantumSweepPoint> out;
  out.reserve(quanta_us.size());
  for (const double q : quanta_us) out.push_back(evaluate_quantum(tasks, params, q, m_hint));
  return out;
}

std::optional<double> best_quantum(const std::vector<OhTask>& tasks,
                                   const OverheadParams& params,
                                   const std::vector<double>& quanta_us) {
  const auto points = sweep_quantum_sizes(tasks, params, quanta_us);
  std::optional<double> best;
  int best_m = 0;
  double best_u = 0.0;
  for (const QuantumSweepPoint& pt : points) {
    if (!pt.processors.has_value()) continue;
    if (!best.has_value() || *pt.processors < best_m ||
        (*pt.processors == best_m && pt.inflated_utilization < best_u)) {
      best = pt.quantum_us;
      best_m = *pt.processors;
      best_u = pt.inflated_utilization;
    }
  }
  return best;
}

}  // namespace pfair
