// Host calibration of the scheduling-cost tables.
//
// The paper's Fig.-3/4 experiments used S_EDF and S_PD2 "chosen based on
// the values obtained by us in the scheduling-overhead experiments"
// (Fig. 2).  This module reproduces that pipeline: measure the
// per-invocation cost of both schedulers on the build host across the
// paper's (task count, processor count) grid and return a
// SchedCostModel filled with the measurements, ready to drop into
// OverheadParams.  The default paper-magnitude tables remain available
// for reproducible offline runs.
#pragma once

#include <cstdint>

#include "overhead/params.h"

namespace pfair {

struct CalibrationConfig {
  std::int64_t horizon = 20000;  ///< slots simulated per grid point
  std::int64_t sets = 3;         ///< task sets averaged per grid point
  std::uint64_t seed = 1;
};

/// Measures EDF (1 processor) and PD2 (1..16 processors) invocation
/// costs across the paper's task-count grid.  Takes a few seconds at
/// the default settings.
[[nodiscard]] SchedCostModel calibrate_sched_costs(const CalibrationConfig& config = {});

}  // namespace pfair
