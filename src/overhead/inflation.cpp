#include "overhead/inflation.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pfair {

namespace {

[[nodiscard]] std::int64_t ceil_quanta(double us, double quantum_us) {
  return static_cast<std::int64_t>(std::ceil(us / quantum_us - 1e-9));
}

}  // namespace

double inflate_edf_us(const OhTask& t, double max_delay_us, const OverheadParams& params,
                      std::size_t n_tasks) {
  const double s = params.sched.edf_us(static_cast<double>(n_tasks));
  return t.execution_us + 2.0 * (s + params.context_switch_us) + max_delay_us;
}

Pd2Inflation inflate_pd2(const OhTask& t, const OverheadParams& params, std::size_t n_tasks,
                         int m, int max_iterations) {
  Pd2Inflation out;
  const double q = params.quantum_us;
  const double s = params.sched.pd2_us(static_cast<double>(n_tasks), m);
  const double c = params.context_switch_us;
  out.period_quanta = ceil_quanta(t.period_us, q);
  assert(out.period_quanta >= 1);

  double e_prime = t.execution_us;
  double previous = -1.0;  // detects 2-cycles of the quantised map
  for (int it = 1; it <= max_iterations; ++it) {
    const std::int64_t eq = std::max<std::int64_t>(1, ceil_quanta(e_prime, q));
    const std::int64_t preemptions = std::min(eq - 1, out.period_quanta - eq);
    if (preemptions < 0) {
      // Inflated demand exceeds the period: the task cannot be scheduled
      // at any processor count (its quantised weight would exceed 1).
      out.execution_us = e_prime;
      out.quanta = eq;
      out.iterations = it;
      out.feasible = false;
      return out;
    }
    const double next = t.execution_us + static_cast<double>(eq) * s + c +
                        static_cast<double>(preemptions) * (c + t.cache_delay_us);
    // Converged, or trapped in a 2-cycle of the quantised map (the
    // iterate alternates between two quanta counts); in the cycle case
    // take the larger, conservative value.
    if (std::abs(next - e_prime) < 1e-9 || std::abs(next - previous) < 1e-9) {
      const double settled = std::max(next, e_prime);
      out.execution_us = settled;
      out.quanta = std::max<std::int64_t>(1, ceil_quanta(settled, q));
      out.iterations = it;
      out.feasible = out.quanta <= out.period_quanta;
      return out;
    }
    previous = e_prime;
    e_prime = next;
  }
  // No fixed point within the iteration budget (only possible for
  // pathological parameter choices); report infeasible.
  out.execution_us = e_prime;
  out.quanta = std::max<std::int64_t>(1, ceil_quanta(e_prime, q));
  out.iterations = max_iterations;
  out.feasible = false;
  return out;
}

std::optional<int> pd2_min_processors(const std::vector<OhTask>& tasks,
                                      const OverheadParams& params, int cap) {
  if (tasks.empty()) return 1;
  double raw = 0.0;
  for (const OhTask& t : tasks) raw += t.utilization();
  int m = std::max(1, static_cast<int>(std::ceil(raw - 1e-9)));
  for (; m <= cap; ++m) {
    double total = 0.0;
    bool ok = true;
    for (const OhTask& t : tasks) {
      const Pd2Inflation inf = inflate_pd2(t, params, tasks.size(), m);
      if (!inf.feasible) {
        ok = false;
        break;
      }
      total += inf.weight();
    }
    if (ok && total <= static_cast<double>(m) + 1e-9) return m;
    if (!ok) return std::nullopt;  // a task with weight > 1 never fits
  }
  return std::nullopt;
}

EdfFfResult edf_ff_partition(const std::vector<OhTask>& tasks, const OverheadParams& params,
                             int max_processors) {
  EdfFfResult res;
  res.assignment.assign(tasks.size(), -1);
  res.inflated_util.assign(tasks.size(), 0.0);
  res.feasible = true;

  // Decreasing-period order: each task's P_T (longer-period co-located
  // tasks) is then fully known at placement time, and placing a task
  // never changes the inflation of tasks placed earlier.
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period_us > tasks[b].period_us;
  });

  struct Proc {
    double load = 0.0;
    std::vector<std::size_t> members;  // indices into `tasks`
  };
  std::vector<Proc> procs;

  for (const std::size_t i : order) {
    int chosen = -1;
    double chosen_util = 0.0;
    for (std::size_t pnum = 0; pnum < procs.size(); ++pnum) {
      // max D(U) over already-placed tasks with strictly larger period.
      double max_delay = 0.0;
      for (const std::size_t j : procs[pnum].members) {
        if (tasks[j].period_us > tasks[i].period_us)
          max_delay = std::max(max_delay, tasks[j].cache_delay_us);
      }
      const double e_inf = inflate_edf_us(tasks[i], max_delay, params, tasks.size());
      const double u_inf = e_inf / tasks[i].period_us;
      if (u_inf > 1.0 + 1e-12) continue;  // task alone overloads this mix
      if (procs[pnum].load + u_inf <= 1.0 + 1e-12) {
        chosen = static_cast<int>(pnum);
        chosen_util = u_inf;
        break;  // first fit
      }
    }
    if (chosen == -1) {
      if (max_processors >= 0 && static_cast<int>(procs.size()) >= max_processors) {
        res.feasible = false;
        continue;
      }
      // New processor: no longer-period neighbours yet, delay term is 0.
      const double e_inf = inflate_edf_us(tasks[i], 0.0, params, tasks.size());
      const double u_inf = e_inf / tasks[i].period_us;
      if (u_inf > 1.0 + 1e-12) {
        res.feasible = false;  // task does not fit even alone
        continue;
      }
      procs.emplace_back();
      chosen = static_cast<int>(procs.size()) - 1;
      chosen_util = u_inf;
    }
    procs[static_cast<std::size_t>(chosen)].load += chosen_util;
    procs[static_cast<std::size_t>(chosen)].members.push_back(i);
    res.assignment[i] = chosen;
    res.inflated_util[i] = chosen_util;
    res.total_inflated_utilization += chosen_util;
  }
  res.processors = static_cast<int>(procs.size());
  return res;
}

LossBreakdown loss_breakdown(const std::vector<OhTask>& tasks, const OverheadParams& params) {
  LossBreakdown out;
  for (const OhTask& t : tasks) out.raw_utilization += t.utilization();

  const std::optional<int> m_pd2 = pd2_min_processors(tasks, params);
  const EdfFfResult ff = edf_ff_partition(tasks, params);
  if (!m_pd2.has_value() || !ff.feasible) return out;

  out.pd2_processors = *m_pd2;
  out.edfff_processors = ff.processors;

  double pd2_total = 0.0;
  for (const OhTask& t : tasks)
    pd2_total += inflate_pd2(t, params, tasks.size(), *m_pd2).weight();

  out.pd2_loss = (pd2_total - out.raw_utilization) / static_cast<double>(*m_pd2);
  out.edf_loss =
      (ff.total_inflated_utilization - out.raw_utilization) / static_cast<double>(ff.processors);
  out.ff_loss = (static_cast<double>(ff.processors) - ff.total_inflated_utilization) /
                static_cast<double>(ff.processors);
  out.valid = true;
  return out;
}

}  // namespace pfair
