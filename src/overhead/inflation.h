// Equation (3): overhead-aware execution-cost inflation and the
// schedulability machinery built on it (paper Sec. 4).
//
// Under EDF (per processor):
//     e' = e + 2 (S_EDF + C) + max_{U in P_T} D(U)
// where P_T is the set of same-processor tasks with periods larger than
// T's (those are the only tasks T can preempt).
//
// Under PD2 (global, quantum q):
//     e' = e + ceil(e'/q) S_PD2 + C
//            + min(ceil(e'/q) - 1, ceil(p/q) - ceil(e'/q)) (C + D(T))
// solved by fixed-point iteration from e' = e (the paper observes
// convergence within ~5 iterations; we also bound the iteration count
// and report divergence).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "overhead/params.h"

namespace pfair {

/// A task in the overhead experiments: continuous-time parameters in
/// microseconds plus its cache-related preemption delay D(T).
struct OhTask {
  double execution_us = 0.0;
  double period_us = 0.0;
  double cache_delay_us = 0.0;  ///< D(T)

  [[nodiscard]] double utilization() const noexcept { return execution_us / period_us; }
};

/// Inflated EDF cost of a task given the largest cache delay among
/// longer-period tasks sharing its processor (`max_delay_us`; 0 if none).
[[nodiscard]] double inflate_edf_us(const OhTask& t, double max_delay_us,
                                    const OverheadParams& params, std::size_t n_tasks);

/// Result of the PD2 fixed-point inflation.
struct Pd2Inflation {
  double execution_us = 0.0;   ///< converged e'
  std::int64_t quanta = 0;     ///< ceil(e'/q)
  std::int64_t period_quanta = 0;
  int iterations = 0;
  bool feasible = false;  ///< e' <= p and the fixed point converged

  /// Quantised weight ceil(e'/q) / (p/q) as a double.
  [[nodiscard]] double weight() const noexcept {
    return period_quanta > 0 ? static_cast<double>(quanta) / static_cast<double>(period_quanta)
                             : 2.0;
  }
};

/// Runs the Eq.-(3) fixed point for one task under PD2 on `m` processors
/// with `n_tasks` tasks in the system.  Periods are assumed multiples of
/// the quantum (the workload generator guarantees this).
[[nodiscard]] Pd2Inflation inflate_pd2(const OhTask& t, const OverheadParams& params,
                                       std::size_t n_tasks, int m, int max_iterations = 64);

/// Minimum processors PD2 needs for `tasks` once Eq.-(3) inflation and
/// quantum rounding are applied: the smallest m with
/// sum of quantised inflated weights <= m.  Returns nullopt if no m up
/// to `cap` suffices (e.g. some task's inflated weight exceeds 1).
[[nodiscard]] std::optional<int> pd2_min_processors(const std::vector<OhTask>& tasks,
                                                    const OverheadParams& params, int cap = 4096);

/// EDF-FF with overhead-aware acceptance: tasks are considered in order
/// of decreasing period (so each task's max_{U in P_T} D(U) is known at
/// placement time) and placed first-fit; a processor accepts a task iff
/// the inflated utilizations on it stay <= 1.
struct EdfFfResult {
  int processors = 0;
  std::vector<int> assignment;          ///< per task (input order), -1 = unplaced
  std::vector<double> inflated_util;    ///< per task, e'/p
  double total_inflated_utilization = 0.0;
  bool feasible = false;
};

/// Partitions with as many processors as needed (min-processor count is
/// the `processors` field).  If `max_processors` >= 0, placement fails
/// once that many processors are open and the result is marked
/// infeasible.
[[nodiscard]] EdfFfResult edf_ff_partition(const std::vector<OhTask>& tasks,
                                           const OverheadParams& params,
                                           int max_processors = -1);

/// Fig.-4 loss decomposition for one task set (see DESIGN.md Sec. 5 for
/// the exact definitions chosen).
struct LossBreakdown {
  double raw_utilization = 0.0;
  int pd2_processors = 0;
  int edfff_processors = 0;
  double pd2_loss = 0.0;  ///< (U'_pd2 - U) / m_pd2
  double edf_loss = 0.0;  ///< (U'_edf - U) / m_edfff
  double ff_loss = 0.0;   ///< (m_edfff - U'_edf) / m_edfff
  bool valid = false;
};

[[nodiscard]] LossBreakdown loss_breakdown(const std::vector<OhTask>& tasks,
                                           const OverheadParams& params);

}  // namespace pfair
