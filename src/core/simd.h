// PFAIR_SIMD: vectorized sweeps over the SubtaskSoA time lanes.
//
// The SoA slot kernel (sim/subtask_soa.h) reduces the per-quantum work
// to two primitives over contiguous int64 lanes:
//
//   collect_le  - gather the indices whose value is <= a bound (the
//                 eligibility scan: "which pending subtasks are ready
//                 in slot t"), in ascending index order;
//   min_value   - horizontal minimum of a lane (the idle fast-forward:
//                 "when does the next subtask become eligible").
//
// Both have branch-light data-parallel forms: a vector compare produces
// a mask, the mask drives either a bit-scan index emit or a blend-min.
// PFAIR_SIMD selects the widest backend the target offers — AVX2 on
// x86-64, NEON on aarch64 — and every backend is required to produce
// *bit-identical output* to the scalar fallback (same indices in the
// same order, same minimum), so a simulation is byte-identical with
// SIMD on or off.  The differential suite (tests/core/simd_test.cpp,
// tests/sim/hotpath_diff_test.cpp) pins exactly that.
//
// The `use_simd` runtime flag (PfairConfig::simd) lets one binary run
// both paths, which is what the equivalence tests and the micro bench
// (bench/micro_soa.cpp) need; when the target has no vector backend the
// flag is ignored and both paths are the scalar loop.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/types.h"

#if defined(__AVX2__)
#include <immintrin.h>
#define PFAIR_SIMD 2
#elif defined(__aarch64__)
#include <arm_neon.h>
#define PFAIR_SIMD 1
#else
#define PFAIR_SIMD 0
#endif

namespace pfair::simd {

/// Name of the compiled vector backend ("avx2", "neon", "scalar");
/// reported by benches so BENCH_*.json records what actually ran.
[[nodiscard]] constexpr const char* backend_name() noexcept {
#if PFAIR_SIMD == 2
  return "avx2";
#elif PFAIR_SIMD == 1
  return "neon";
#else
  return "scalar";
#endif
}

/// True when a vector backend is compiled in (PFAIR_SIMD != 0).
[[nodiscard]] constexpr bool vectorized() noexcept { return PFAIR_SIMD != 0; }

// --- scalar reference forms ----------------------------------------------

/// Appends base + i for every i < n with vals[i] <= bound, ascending.
inline void collect_le_scalar(const Time* vals, std::size_t n, Time bound,
                              std::uint32_t base, std::vector<std::uint32_t>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    if (vals[i] <= bound) out.push_back(base + static_cast<std::uint32_t>(i));
  }
}

/// Minimum of vals[0..n) (INT64_MAX for n == 0).
[[nodiscard]] inline Time min_value_scalar(const Time* vals, std::size_t n) noexcept {
  Time best = std::numeric_limits<Time>::max();
  for (std::size_t i = 0; i < n; ++i) {
    if (vals[i] < best) best = vals[i];
  }
  return best;
}

// --- vector backends -----------------------------------------------------

#if PFAIR_SIMD == 2

inline void collect_le_vector(const Time* vals, std::size_t n, Time bound,
                              std::uint32_t base, std::vector<std::uint32_t>& out) {
  const __m256i vb = _mm256_set1_epi64x(bound);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    // gt = vals > bound per lane; ready lanes are the complement.
    const __m256i gt = _mm256_cmpgt_epi64(v, vb);
    unsigned ready =
        (~static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(gt)))) & 0xfu;
    while (ready != 0) {
      const unsigned lane = static_cast<unsigned>(__builtin_ctz(ready));
      out.push_back(base + static_cast<std::uint32_t>(i + lane));
      ready &= ready - 1;
    }
  }
  collect_le_scalar(vals + i, n - i, bound, base + static_cast<std::uint32_t>(i), out);
}

[[nodiscard]] inline Time min_value_vector(const Time* vals, std::size_t n) noexcept {
  __m256i vmin = _mm256_set1_epi64x(std::numeric_limits<Time>::max());
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    // AVX2 has no 64-bit min; blend by the (signed) compare mask.
    const __m256i gt = _mm256_cmpgt_epi64(vmin, v);
    vmin = _mm256_blendv_epi8(vmin, v, gt);
  }
  alignas(32) Time lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  Time best = lanes[0];
  for (int k = 1; k < 4; ++k) {
    if (lanes[k] < best) best = lanes[k];
  }
  const Time tail = min_value_scalar(vals + i, n - i);
  return tail < best ? tail : best;
}

#elif PFAIR_SIMD == 1

inline void collect_le_vector(const Time* vals, std::size_t n, Time bound,
                              std::uint32_t base, std::vector<std::uint32_t>& out) {
  const int64x2_t vb = vdupq_n_s64(bound);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(vals + i);
    const uint64x2_t le = vcleq_s64(v, vb);
    if (vgetq_lane_u64(le, 0) != 0) out.push_back(base + static_cast<std::uint32_t>(i));
    if (vgetq_lane_u64(le, 1) != 0) out.push_back(base + static_cast<std::uint32_t>(i + 1));
  }
  collect_le_scalar(vals + i, n - i, bound, base + static_cast<std::uint32_t>(i), out);
}

[[nodiscard]] inline Time min_value_vector(const Time* vals, std::size_t n) noexcept {
  int64x2_t vmin = vdupq_n_s64(std::numeric_limits<Time>::max());
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const int64x2_t v = vld1q_s64(vals + i);
    const uint64x2_t lt = vcltq_s64(v, vmin);
    vmin = vbslq_s64(lt, v, vmin);
  }
  Time best = vgetq_lane_s64(vmin, 0);
  const Time lane1 = vgetq_lane_s64(vmin, 1);
  if (lane1 < best) best = lane1;
  const Time tail = min_value_scalar(vals + i, n - i);
  return tail < best ? tail : best;
}

#endif

// --- dispatch ------------------------------------------------------------

/// Eligibility gather: appends base + i for every i < n with
/// vals[i] <= bound, in ascending index order (all backends agree on
/// the order — it is part of the determinism contract).
inline void collect_le(const Time* vals, std::size_t n, Time bound, std::uint32_t base,
                       std::vector<std::uint32_t>& out, bool use_simd) {
#if PFAIR_SIMD != 0
  if (use_simd) {
    collect_le_vector(vals, n, bound, base, out);
    return;
  }
#else
  (void)use_simd;
#endif
  collect_le_scalar(vals, n, bound, base, out);
}

/// Lane minimum (INT64_MAX for n == 0).
[[nodiscard]] inline Time min_value(const Time* vals, std::size_t n, bool use_simd) noexcept {
#if PFAIR_SIMD != 0
  if (use_simd) return min_value_vector(vals, n);
#else
  (void)use_simd;
#endif
  return min_value_scalar(vals, n);
}

}  // namespace pfair::simd
