// ASCII rendering of Pfair subtask windows, in the style of the paper's
// Fig. 1: one row per subtask, a bar spanning [r(T_i), d(T_i)).
//
//   T3  |    [=====)      |
//
// Supports the intra-sporadic variant (per-subtask offsets) so both
// Fig. 1(a) and Fig. 1(b) can be reproduced.
#pragma once

#include <string>
#include <vector>

#include "util/types.h"

namespace pfair {

/// Renders the windows of subtasks first..last of a periodic task with
/// weight e/p.  `offsets[i - first]` shifts subtask i (pass {} for a
/// synchronous periodic task).  Columns cover [0, max deadline).
[[nodiscard]] std::string render_window_diagram(std::int64_t e, std::int64_t p,
                                                SubtaskIndex first, SubtaskIndex last,
                                                const std::vector<Time>& offsets = {});

}  // namespace pfair
