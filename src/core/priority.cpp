#include "core/priority.h"

#include <atomic>

namespace pfair {

namespace {
// Relaxed atomic: campaigns read it concurrently from worker threads,
// but it is only written while no simulation is running.  The unflipped
// fast path costs one predictable not-taken branch per comparison.
std::atomic<bool> g_pd2_b_bit_flipped{false};
}  // namespace

void set_pd2_b_bit_flip_for_test(bool flipped) noexcept {
  g_pd2_b_bit_flipped.store(flipped, std::memory_order_relaxed);
}

bool pd2_b_bit_flip_for_test() noexcept {
  return g_pd2_b_bit_flipped.load(std::memory_order_relaxed);
}

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kPD2:
      return "PD2";
    case Algorithm::kPF:
      return "PF";
    case Algorithm::kPD:
      return "PD";
    case Algorithm::kEPDF:
      return "EPDF";
    case Algorithm::kWRR:
      return "WRR";
  }
  return "?";
}

namespace {

// --- packed-key layouts --------------------------------------------------
//
// A PackedKey orders lexicographically as the 128-bit value hi:lo, so a
// comparator chain "compare A asc, then B asc, then C asc" packs as the
// bit-concatenation [A][B][C] (MSB first).  Descending fields store
// their complement against the field mask ("¬x" below): later group
// deadlines and set b-bits must win, and a complemented field turns
// "later is higher priority" back into plain ascending integer order.
//
//   PD2:  [deadline:48][¬b:1][¬group_dl*:47][task:32]
//   PD:   [deadline:38][¬b:1][¬group_dl*:37][¬wrank:33][task:19]
//   EPDF: [deadline:64][task:32 in lo]
//
// group_dl* is the group deadline as the comparator actually uses it:
// zero unless b = 1 (the legacy chain only consults group_dl on a b = 1
// tie, so packing the raw value for b = 0 refs would invent an ordering
// the reference comparator does not have).
//
// PD's weight tie-break (heavier first, exact cross-multiplied
// comparison of e/p) packs as ¬wrank with wrank = floor(e·2^32 / p):
// for denominators p <= 2^16, two distinct weights differ by at least
// 1/2^32, so the scaled floor preserves strict order and equal weights
// collapse to equal ranks — the embedding is exact, not approximate.
//
// Fields that do not fit their width (huge absolute times, p > 2^16,
// task ids beyond 2^19 for PD) cannot be packed exactly; the ref then
// keeps key_alg = kKeyNone and every comparison falls back to the
// legacy chain, which is always correct.

[[nodiscard]] constexpr bool fits(std::int64_t v, int bits) noexcept {
  return v >= 0 && v < (std::int64_t{1} << bits);
}

// Packs PD2's (deadline asc, b desc, group_dl desc on b = 1, task asc).
[[nodiscard]] bool pack_pd2(SubtaskRef& s) noexcept {
  const std::int64_t gdl = s.b == 1 ? s.group_dl : 0;
  if (!fits(s.deadline, 48) || !fits(gdl, 47)) return false;
  const std::uint64_t d = static_cast<std::uint64_t>(s.deadline);
  const std::uint64_t not_b = s.b == 1 ? 0u : 1u;
  const std::uint64_t not_g = ((std::uint64_t{1} << 47) - 1) - static_cast<std::uint64_t>(gdl);
  // hi = [deadline:48][¬b:1][¬g top 15], lo = [¬g low 32][task:32].
  s.key.hi = (d << 16) | (not_b << 15) | (not_g >> 32);
  s.key.lo = (not_g << 32) | s.task;
  return true;
}

// Packs PD's (PD2 chain, then weight desc, then task asc).
[[nodiscard]] bool pack_pd(SubtaskRef& s) noexcept {
  const std::int64_t gdl = s.b == 1 ? s.group_dl : 0;
  if (!fits(s.deadline, 38) || !fits(gdl, 37)) return false;
  if (s.p > (std::int64_t{1} << 16) || s.task >= (std::uint32_t{1} << 19)) return false;
  const std::uint64_t d = static_cast<std::uint64_t>(s.deadline);
  const std::uint64_t not_b = s.b == 1 ? 0u : 1u;
  const std::uint64_t not_g = ((std::uint64_t{1} << 37) - 1) - static_cast<std::uint64_t>(gdl);
  const std::uint64_t wrank = (static_cast<std::uint64_t>(s.e) << 32) /
                              static_cast<std::uint64_t>(s.p);  // <= 2^32
  const std::uint64_t not_w = ((std::uint64_t{1} << 33) - 1) - wrank;
  // hi = [deadline:38][¬b:1][¬g top 25], lo = [¬g low 12][¬w:33][task:19].
  s.key.hi = (d << 26) | (not_b << 25) | (not_g >> 12);
  s.key.lo = (not_g << 52) | (not_w << 19) | s.task;
  return true;
}

// Packs EPDF's (deadline asc, task asc).
[[nodiscard]] bool pack_epdf(SubtaskRef& s) noexcept {
  if (s.deadline < 0) return false;
  s.key.hi = static_cast<std::uint64_t>(s.deadline);
  s.key.lo = s.task;
  return true;
}

}  // namespace

// Fills the packed key (or kKeyNone) for a ref whose other fields are set.
void pack_subtask_ref(SubtaskRef& s, Algorithm alg) noexcept {
  bool packed = false;
  switch (alg) {
    case Algorithm::kPD2:
      packed = pack_pd2(s);
      break;
    case Algorithm::kPD:
      packed = pack_pd(s);
      break;
    case Algorithm::kEPDF:
      packed = pack_epdf(s);
      break;
    case Algorithm::kPF:   // PF ties need the recursive chain comparison
    case Algorithm::kWRR:  // WRR has no subtask priorities
      break;
  }
  s.key_alg = packed ? static_cast<std::uint8_t>(alg) : kKeyNone;
}

SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p, SubtaskIndex i,
                            Time offset, Algorithm alg) noexcept {
  SubtaskWindows w;
  w.release = subtask_release(e, p, i);
  w.deadline = subtask_deadline(e, p, i);
  w.b = b_bit(e, p, i);
  w.group_dl = is_heavy(e, p) ? group_deadline(e, p, i) : 0;
  return make_subtask_ref(task, e, p, i, offset, w, alg);
}

SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p, SubtaskIndex i,
                            Time offset, const SubtaskWindows& w, Algorithm alg) noexcept {
  SubtaskRef s;
  s.task = task;
  s.index = i;
  s.e = e;
  s.p = p;
  s.offset = offset;
  s.release = offset + w.release;
  s.deadline = offset + w.deadline;
  s.b = w.b;
  // Light tasks keep group_dl = 0 (not offset + 0): the comparators treat
  // zero as "no group deadline".
  s.group_dl = w.group_dl == 0 ? 0 : offset + w.group_dl;
  pack_subtask_ref(s, alg);
  return s;
}

bool pd2_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) {
    if (g_pd2_b_bit_flipped.load(std::memory_order_relaxed)) [[unlikely]] {
      return a.b < b.b;  // injected bug: prefers b = 0 (see priority.h)
    }
    return a.b > b.b;
  }
  if (a.b == 1 && a.group_dl != b.group_dl) return a.group_dl > b.group_dl;
  return a.task < b.task;
}

bool epdf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.task < b.task;
}

bool pd_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) return a.b > b.b;
  if (a.b == 1 && a.group_dl != b.group_dl) return a.group_dl > b.group_dl;
  // PD's historical extra tie-breaks resolved weight comparisons in
  // constant time; we keep the same effect: heavier task first (compare
  // e_a/p_a vs e_b/p_b by cross multiplication), then stable id.
  const std::int64_t lhs = a.e * b.p;
  const std::int64_t rhs = b.e * a.p;
  if (lhs != rhs) return lhs > rhs;
  return a.task < b.task;
}

bool pf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) return a.b > b.b;
  if (a.b == 0) return a.task < b.task;  // both b = 0: genuine tie
  // Both b = 1 with equal deadlines: compare successor chains
  // lexicographically by (deadline, b-bit) until they diverge or a
  // subtask with b = 0 is reached.  Chains of two tasks either diverge
  // within lcm(p_a, p_b) slots or the tasks have equal weight and
  // perpetually aligned windows (a true tie); capping at p_a + p_b
  // steps is enough to distinguish all diverging cases because window
  // patterns repeat with period e (one job) in subtask index.
  const SubtaskIndex cap = a.e + b.e + 2;
  for (SubtaskIndex k = 1; k <= cap; ++k) {
    const Time da = a.offset + subtask_deadline(a.e, a.p, a.index + k);
    const Time db = b.offset + subtask_deadline(b.e, b.p, b.index + k);
    if (da != db) return da < db;
    const int ba = b_bit(a.e, a.p, a.index + k);
    const int bb = b_bit(b.e, b.p, b.index + k);
    if (ba != bb) return ba > bb;
    if (ba == 0) break;  // both chains end a cascade here: tie
  }
  return a.task < b.task;
}

}  // namespace pfair
