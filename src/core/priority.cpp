#include "core/priority.h"

#include <atomic>

namespace pfair {

namespace {
// Relaxed atomic: campaigns read it concurrently from worker threads,
// but it is only written while no simulation is running.  The unflipped
// fast path costs one predictable not-taken branch per comparison.
std::atomic<bool> g_pd2_b_bit_flipped{false};
}  // namespace

void set_pd2_b_bit_flip_for_test(bool flipped) noexcept {
  g_pd2_b_bit_flipped.store(flipped, std::memory_order_relaxed);
}

bool pd2_b_bit_flip_for_test() noexcept {
  return g_pd2_b_bit_flipped.load(std::memory_order_relaxed);
}

const char* algorithm_name(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kPD2:
      return "PD2";
    case Algorithm::kPF:
      return "PF";
    case Algorithm::kPD:
      return "PD";
    case Algorithm::kEPDF:
      return "EPDF";
    case Algorithm::kWRR:
      return "WRR";
  }
  return "?";
}

SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p, SubtaskIndex i,
                            Time offset) noexcept {
  SubtaskRef s;
  s.task = task;
  s.index = i;
  s.e = e;
  s.p = p;
  s.offset = offset;
  s.release = offset + subtask_release(e, p, i);
  s.deadline = offset + subtask_deadline(e, p, i);
  s.b = b_bit(e, p, i);
  s.group_dl = is_heavy(e, p) ? offset + group_deadline(e, p, i) : 0;
  return s;
}

bool pd2_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) {
    if (g_pd2_b_bit_flipped.load(std::memory_order_relaxed)) [[unlikely]] {
      return a.b < b.b;  // injected bug: prefers b = 0 (see priority.h)
    }
    return a.b > b.b;
  }
  if (a.b == 1 && a.group_dl != b.group_dl) return a.group_dl > b.group_dl;
  return a.task < b.task;
}

bool epdf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.task < b.task;
}

bool pd_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) return a.b > b.b;
  if (a.b == 1 && a.group_dl != b.group_dl) return a.group_dl > b.group_dl;
  // PD's historical extra tie-breaks resolved weight comparisons in
  // constant time; we keep the same effect: heavier task first (compare
  // e_a/p_a vs e_b/p_b by cross multiplication), then stable id.
  const std::int64_t lhs = a.e * b.p;
  const std::int64_t rhs = b.e * a.p;
  if (lhs != rhs) return lhs > rhs;
  return a.task < b.task;
}

bool pf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.b != b.b) return a.b > b.b;
  if (a.b == 0) return a.task < b.task;  // both b = 0: genuine tie
  // Both b = 1 with equal deadlines: compare successor chains
  // lexicographically by (deadline, b-bit) until they diverge or a
  // subtask with b = 0 is reached.  Chains of two tasks either diverge
  // within lcm(p_a, p_b) slots or the tasks have equal weight and
  // perpetually aligned windows (a true tie); capping at p_a + p_b
  // steps is enough to distinguish all diverging cases because window
  // patterns repeat with period e (one job) in subtask index.
  const SubtaskIndex cap = a.e + b.e + 2;
  for (SubtaskIndex k = 1; k <= cap; ++k) {
    const Time da = a.offset + subtask_deadline(a.e, a.p, a.index + k);
    const Time db = b.offset + subtask_deadline(b.e, b.p, b.index + k);
    if (da != db) return da < db;
    const int ba = b_bit(a.e, a.p, a.index + k);
    const int bb = b_bit(b.e, b.p, b.index + k);
    if (ba != bb) return ba > bb;
    if (ba == 0) break;  // both chains end a cascade here: tie
  }
  return a.task < b.task;
}

}  // namespace pfair
