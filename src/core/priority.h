// Subtask priority rules: PD2, PF, PD (paper Sec. 2).
//
// All three optimal Pfair algorithms order subtasks earliest-pseudo-
// deadline-first and differ only in tie-breaking:
//
//   PF  [Baruah et al. 96]: b-bit, then lexicographic comparison of the
//        successor subtasks' (deadline, b-bit) chains.
//   PD  [Baruah, Gehrke, Plaxton 95]: a constant-time refinement of PF.
//        We implement it as PD2's rules plus further deterministic
//        tie-breaks (heavier weight first, then task id).  Any
//        refinement of PD2's rules is optimal, since PD2's rules alone
//        are sufficient for optimality [Srinivasan & Anderson 02].
//   PD2 [Anderson & Srinivasan 00]: b-bit, then *later* group deadline.
#pragma once

#include <cstdint>

#include "core/windows.h"
#include "util/types.h"

namespace pfair {

/// Which priority rule a scheduler uses.
enum class Algorithm : std::uint8_t { kPD2, kPF, kPD, kEPDF, kWRR };

[[nodiscard]] const char* algorithm_name(Algorithm a) noexcept;

/// A 128-bit totally ordered priority key, compared lexicographically as
/// (hi, lo).  Packing a comparator's whole decision chain into one key
/// turns the 4-branch tie-break cascade into a single two-word integer
/// compare — the dominant operation of every heap sift on the simulator
/// hot path.  Layouts are algorithm-specific (see priority.cpp); a key
/// is only meaningful against keys packed for the same algorithm.
struct PackedKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  [[nodiscard]] friend constexpr bool operator<(const PackedKey& a,
                                                const PackedKey& b) noexcept {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  [[nodiscard]] friend constexpr bool operator==(const PackedKey& a,
                                                 const PackedKey& b) noexcept = default;
};

/// Sentinel marking SubtaskRef::key as "no exact packed key" (the ref
/// falls back to the legacy comparator chain).
inline constexpr std::uint8_t kKeyNone = 0xff;

/// A schedulable subtask instance in the ready queue.  Carries the task
/// parameters so comparators are self-contained (PF recursion needs
/// them), plus cached absolute timing and the precomputed priority key.
struct SubtaskRef {
  TaskId task = kNoTask;
  SubtaskIndex index = 1;   ///< i (1-based within the task's subtask chain)
  std::int64_t e = 1;       ///< task execution cost (quanta)
  std::int64_t p = 1;       ///< task period (quanta)
  Time offset = 0;          ///< absolute shift of this subtask's windows (IS θ)
  Time release = 0;         ///< absolute pseudo-release offset + r(T_i)
  Time deadline = 1;        ///< absolute pseudo-deadline offset + d(T_i)
  int b = 0;                ///< b-bit
  Time group_dl = 0;        ///< absolute group deadline (0 for light tasks)
  PackedKey key;            ///< precomputed priority key (see key_alg)
  std::uint8_t key_alg = kKeyNone;  ///< Algorithm the key was packed for,
                                    ///< or kKeyNone when no exact key fits
};

/// Builds a SubtaskRef with all derived fields filled in, including the
/// packed priority key for `alg` when every field fits the key layout
/// exactly (key_alg records which; kKeyNone means the comparators use
/// the legacy tie-break chain — always correct, just slower).  PF and
/// WRR never pack: PF ties need the recursive successor-chain
/// comparison, WRR has no subtask priorities.
[[nodiscard]] SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p,
                                          SubtaskIndex i, Time offset,
                                          Algorithm alg = Algorithm::kPD2) noexcept;

/// Offset-relative window of one subtask, precomputed by the caller
/// (e.g. by a WindowCursor, which derives them without divisions).
/// group_dl is 0 for light tasks, otherwise the relative group deadline.
struct SubtaskWindows {
  Time release = 0;
  Time deadline = 1;
  int b = 0;
  Time group_dl = 0;
};

/// make_subtask_ref with the window arithmetic already done.  Produces a
/// ref bit-identical to the closed-form overload above for matching
/// (e, p, i, offset, alg) — the simulator's cursor fast path asserts
/// exactly that in debug builds.
[[nodiscard]] SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p,
                                          SubtaskIndex i, Time offset,
                                          const SubtaskWindows& w, Algorithm alg) noexcept;

/// Recomputes s.key / s.key_alg from the ordering fields already in `s`
/// (the in-place counterpart of make_subtask_ref's packing step, for
/// callers that mutate a ref's windows instead of rebuilding it).
void pack_subtask_ref(SubtaskRef& s, Algorithm alg) noexcept;

/// Strict "higher priority than" under PD2: earlier deadline; then b = 1
/// beats b = 0; then (both b = 1) later group deadline; then task id.
[[nodiscard]] bool pd2_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Test-only fault injection: when set, pd2_higher_priority resolves
/// deadline ties toward b = 0 instead of b = 1 — a deliberately wrong
/// PD2 that the qa fuzzing layer must catch and shrink (the end-to-end
/// self-test of the oracle/shrinker pipeline; see qa/campaign.h).  PF
/// and PD are unaffected, so the differential oracle sees the optimal
/// algorithms disagree.  Never set outside tests or `pfair_fuzz
/// --inject-pd2-b-bit-flip`.
void set_pd2_b_bit_flip_for_test(bool flipped) noexcept;
[[nodiscard]] bool pd2_b_bit_flip_for_test() noexcept;

/// RAII guard around the flip flag for exception-safe tests.
class ScopedPd2BBitFlip {
 public:
  ScopedPd2BBitFlip() noexcept { set_pd2_b_bit_flip_for_test(true); }
  ~ScopedPd2BBitFlip() { set_pd2_b_bit_flip_for_test(false); }
  ScopedPd2BBitFlip(const ScopedPd2BBitFlip&) = delete;
  ScopedPd2BBitFlip& operator=(const ScopedPd2BBitFlip&) = delete;
};

/// Strict "higher priority than" under PF (lexicographic successor
/// comparison, capped — see .cpp).
[[nodiscard]] bool pf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Strict "higher priority than" under PD (PD2 rules + weight + id).
[[nodiscard]] bool pd_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Earliest-pseudo-deadline-first with *no* tie-breaks beyond task id.
/// Not optimal (used as an ablation baseline showing the tie-breaks
/// matter).
[[nodiscard]] bool epdf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Comparator functor selecting one of the rules at construction; usable
/// as the Less parameter of BinaryHeap.  When both operands carry a
/// packed key for this comparator's algorithm (and packing is not
/// disabled), the comparison is a single PackedKey compare; the packing
/// in priority.cpp guarantees that path returns exactly what the legacy
/// chain below would, so mixing keyed and keyless refs stays a
/// consistent strict weak ordering.
class SubtaskPriority {
 public:
  explicit SubtaskPriority(Algorithm alg = Algorithm::kPD2, bool packed = true) noexcept
      : alg_(alg), packed_(packed) {}

  [[nodiscard]] bool operator()(const SubtaskRef& a, const SubtaskRef& b) const noexcept {
    if (packed_ && a.key_alg == static_cast<std::uint8_t>(alg_) &&
        b.key_alg == static_cast<std::uint8_t>(alg_)) {
      if (alg_ != Algorithm::kPD2 || !pd2_b_bit_flip_for_test()) [[likely]] {
        return a.key < b.key;
      }
    }
    return compare_legacy(a, b);
  }

  /// The pre-packed-key comparator chain (the reference semantics the
  /// packed path must reproduce bit-exactly; differential tests compare
  /// heaps driven by each).
  [[nodiscard]] bool compare_legacy(const SubtaskRef& a, const SubtaskRef& b) const noexcept {
    switch (alg_) {
      case Algorithm::kPF:
        return pf_higher_priority(a, b);
      case Algorithm::kPD:
        return pd_higher_priority(a, b);
      case Algorithm::kEPDF:
        return epdf_higher_priority(a, b);
      case Algorithm::kWRR:  // WRR has no subtask priorities; fall through
      case Algorithm::kPD2:
        return pd2_higher_priority(a, b);
    }
    return pd2_higher_priority(a, b);
  }

  [[nodiscard]] Algorithm algorithm() const noexcept { return alg_; }
  [[nodiscard]] bool packed() const noexcept { return packed_; }

 private:
  Algorithm alg_;
  bool packed_ = true;
};

}  // namespace pfair

// The ready-queue heap specialization (sifts on PackedKey instead of
// whole SubtaskRefs).  Included here, after the types it specializes
// over, so no translation unit can instantiate the primary
// BinaryHeap<SubtaskRef, SubtaskPriority> and split the ODR.
#include "core/subtask_heap.h"  // IWYU pragma: keep
