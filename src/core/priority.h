// Subtask priority rules: PD2, PF, PD (paper Sec. 2).
//
// All three optimal Pfair algorithms order subtasks earliest-pseudo-
// deadline-first and differ only in tie-breaking:
//
//   PF  [Baruah et al. 96]: b-bit, then lexicographic comparison of the
//        successor subtasks' (deadline, b-bit) chains.
//   PD  [Baruah, Gehrke, Plaxton 95]: a constant-time refinement of PF.
//        We implement it as PD2's rules plus further deterministic
//        tie-breaks (heavier weight first, then task id).  Any
//        refinement of PD2's rules is optimal, since PD2's rules alone
//        are sufficient for optimality [Srinivasan & Anderson 02].
//   PD2 [Anderson & Srinivasan 00]: b-bit, then *later* group deadline.
#pragma once

#include <cstdint>

#include "core/windows.h"
#include "util/types.h"

namespace pfair {

/// Which priority rule a scheduler uses.
enum class Algorithm : std::uint8_t { kPD2, kPF, kPD, kEPDF, kWRR };

[[nodiscard]] const char* algorithm_name(Algorithm a) noexcept;

/// A schedulable subtask instance in the ready queue.  Carries the task
/// parameters so comparators are self-contained (PF recursion needs
/// them), plus cached absolute timing.
struct SubtaskRef {
  TaskId task = kNoTask;
  SubtaskIndex index = 1;   ///< i (1-based within the task's subtask chain)
  std::int64_t e = 1;       ///< task execution cost (quanta)
  std::int64_t p = 1;       ///< task period (quanta)
  Time offset = 0;          ///< absolute shift of this subtask's windows (IS θ)
  Time release = 0;         ///< absolute pseudo-release offset + r(T_i)
  Time deadline = 1;        ///< absolute pseudo-deadline offset + d(T_i)
  int b = 0;                ///< b-bit
  Time group_dl = 0;        ///< absolute group deadline (0 for light tasks)
};

/// Builds a SubtaskRef with all derived fields filled in.
[[nodiscard]] SubtaskRef make_subtask_ref(TaskId task, std::int64_t e, std::int64_t p,
                                          SubtaskIndex i, Time offset) noexcept;

/// Strict "higher priority than" under PD2: earlier deadline; then b = 1
/// beats b = 0; then (both b = 1) later group deadline; then task id.
[[nodiscard]] bool pd2_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Test-only fault injection: when set, pd2_higher_priority resolves
/// deadline ties toward b = 0 instead of b = 1 — a deliberately wrong
/// PD2 that the qa fuzzing layer must catch and shrink (the end-to-end
/// self-test of the oracle/shrinker pipeline; see qa/campaign.h).  PF
/// and PD are unaffected, so the differential oracle sees the optimal
/// algorithms disagree.  Never set outside tests or `pfair_fuzz
/// --inject-pd2-b-bit-flip`.
void set_pd2_b_bit_flip_for_test(bool flipped) noexcept;
[[nodiscard]] bool pd2_b_bit_flip_for_test() noexcept;

/// RAII guard around the flip flag for exception-safe tests.
class ScopedPd2BBitFlip {
 public:
  ScopedPd2BBitFlip() noexcept { set_pd2_b_bit_flip_for_test(true); }
  ~ScopedPd2BBitFlip() { set_pd2_b_bit_flip_for_test(false); }
  ScopedPd2BBitFlip(const ScopedPd2BBitFlip&) = delete;
  ScopedPd2BBitFlip& operator=(const ScopedPd2BBitFlip&) = delete;
};

/// Strict "higher priority than" under PF (lexicographic successor
/// comparison, capped — see .cpp).
[[nodiscard]] bool pf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Strict "higher priority than" under PD (PD2 rules + weight + id).
[[nodiscard]] bool pd_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Earliest-pseudo-deadline-first with *no* tie-breaks beyond task id.
/// Not optimal (used as an ablation baseline showing the tie-breaks
/// matter).
[[nodiscard]] bool epdf_higher_priority(const SubtaskRef& a, const SubtaskRef& b) noexcept;

/// Comparator functor selecting one of the rules at construction; usable
/// as the Less parameter of BinaryHeap.
class SubtaskPriority {
 public:
  explicit SubtaskPriority(Algorithm alg = Algorithm::kPD2) noexcept : alg_(alg) {}

  [[nodiscard]] bool operator()(const SubtaskRef& a, const SubtaskRef& b) const noexcept {
    switch (alg_) {
      case Algorithm::kPF:
        return pf_higher_priority(a, b);
      case Algorithm::kPD:
        return pd_higher_priority(a, b);
      case Algorithm::kEPDF:
        return epdf_higher_priority(a, b);
      case Algorithm::kWRR:  // WRR has no subtask priorities; fall through
      case Algorithm::kPD2:
        return pd2_higher_priority(a, b);
    }
    return pd2_higher_priority(a, b);
  }

  [[nodiscard]] Algorithm algorithm() const noexcept { return alg_; }

 private:
  Algorithm alg_;
};

}  // namespace pfair
