#include "core/supertask.h"

#include <utility>

namespace pfair {

namespace {

SupertaskSpec build(std::vector<Task> components, Rational weight, std::string name) {
  assert(!components.empty());
  assert(Rational(0) < weight && weight <= Rational(1));
  SupertaskSpec s;
  s.components = std::move(components);
  s.execution = weight.num();
  s.period = weight.den();
  s.name = std::move(name);
  return s;
}

}  // namespace

SupertaskSpec make_supertask(std::vector<Task> components, std::string name) {
  Rational w(0);
  for (const Task& c : components) w += c.weight();
  return build(std::move(components), w, std::move(name));
}

SupertaskSpec make_reweighted_supertask(std::vector<Task> components, std::string name) {
  Rational w(0);
  std::int64_t pmin = components.empty() ? 1 : components.front().period;
  for (const Task& c : components) {
    w += c.weight();
    if (c.period < pmin) pmin = c.period;
  }
  w += Rational(1, pmin);
  if (Rational(1) < w) w = Rational(1);
  return build(std::move(components), w, std::move(name));
}

}  // namespace pfair
