// Calendar priority queue for the Pfair ready queue, specializing
// BinaryHeap<SubtaskRef, SubtaskPriority>.
//
// Every Pfair priority rule (PD2, PD, PF, EPDF — flipped-b included)
// orders by pseudo-deadline first and consults tie-breaks only between
// equal deadlines.  A comparison-based heap pays O(log n) data-dependent
// branches per pop for an order the deadline already gives away, and on
// the simulator hot path (M pops + M pushes per quantum) those sifts
// dominated the profile.  This structure indexes ready subtasks by
// deadline instead:
//
//   - a power-of-two ring of buckets, one deadline value per bucket
//     (entries in [base_, base_ + size) cannot alias, and base_ only
//     moves forward, so the invariant is free);
//   - a bitmap of non-empty buckets, scanned in wrapped index order from
//     base_, which is exactly ascending-deadline order — the first
//     non-empty bucket holds every candidate for the ring minimum;
//   - the full comparator breaks ties inside that one bucket (a handful
//     of entries), so pop returns the exact comparator minimum and the
//     pop sequence is bit-identical to any other implementation of the
//     same strict total order;
//   - a small 4-ary side heap (ordered by the same comparator) absorbs
//     entries outside the ring window: deadlines below base_ (late
//     requeued subtasks after the window advanced) or beyond the growth
//     cap.  The global top is the comparator-min of the ring candidate
//     and the side top; a below-base_ side entry wins automatically
//     because a strictly smaller deadline wins under every rule.
//
// Push is O(1) (bucket append + bitmap set), erase is O(1) (swap-pop
// via a handle-indexed location table), pop is O(buckets scanned +
// bucket size) with the scan amortized by the forward march of base_.
// PD2's b-bit fault injection flips the comparator at run time; the
// flip is resolved once per operation and only affects equal-deadline
// selection, which the bucket layout leaves to the comparator anyway.
//
// Included from core/priority.h so every translation unit that can name
// BinaryHeap<SubtaskRef, SubtaskPriority> sees the specialization (no
// ODR split between the primary template and this one).
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/priority.h"
#include "util/binary_heap.h"

namespace pfair {

template <>
class BinaryHeap<SubtaskRef, SubtaskPriority> {
 public:
  // 0xfe never equals any ref's key_alg (an Algorithm value or kKeyNone),
  // so a packing-disabled heap takes the legacy path for every pair.
  explicit BinaryHeap(SubtaskPriority less = SubtaskPriority{}) noexcept
      : less_(less),
        packed_alg_(less.packed() ? static_cast<std::uint8_t>(less.algorithm()) : 0xfe),
        flip_guarded_(less.algorithm() == Algorithm::kPD2) {}

  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  void clear() noexcept {
    if (ring_count_ > 0) {
      for (std::vector<Node>& b : buckets_) b.clear();
    }
    std::fill(words_.begin(), words_.end(), std::uint64_t{0});
    ring_count_ = 0;
    side_.clear();
    values_.clear();
    loc_.clear();
    free_slots_.clear();
    count_ = 0;
    base_ = 0;
    hi_ = 0;
    cached_top_ = kInvalidHandle;
    cached_bucket_ = -1;
  }

  /// Inserts `value`; O(1) unless the ring grows (rare, geometric).
  HeapHandle push(SubtaskRef value) {
    HeapHandle h;
    if (!free_slots_.empty()) {
      h = free_slots_.back();
      free_slots_.pop_back();
      values_[h] = value;
    } else {
      h = static_cast<HeapHandle>(values_.size());
      values_.push_back(value);
      loc_.emplace_back();
    }
    insert_node(Node{value.key, h, value.key_alg}, value.deadline);
    ++count_;
    cached_top_ = kInvalidHandle;
    return h;
  }

  /// Highest-priority element; heap must be non-empty.
  [[nodiscard]] const SubtaskRef& top() const noexcept { return values_[find_top()]; }

  /// Handle of the highest-priority element.
  [[nodiscard]] HeapHandle top_handle() const noexcept { return find_top(); }

  /// Removes and returns the highest-priority element.
  SubtaskRef pop() {
    const HeapHandle h = find_top();
    SubtaskRef out = std::move(values_[h]);
    detach(h);
    release_handle(h);
    return out;
  }

  /// Removes the element behind `h`; O(1) for ring entries.
  void erase(HeapHandle h) {
    assert(contains(h));
    detach(h);
    release_handle(h);
  }

  /// Read access to the element behind `h`.
  [[nodiscard]] const SubtaskRef& get(HeapHandle h) const noexcept {
    assert(contains(h));
    return values_[h];
  }

  /// Mutable access; caller must call update(h) if the ordering key changed.
  [[nodiscard]] SubtaskRef& get_mutable(HeapHandle h) noexcept {
    assert(contains(h));
    return values_[h];
  }

  /// Re-files the element behind `h` after its key changed; re-reads the
  /// packed key and deadline from the side table.
  void update(HeapHandle h) {
    assert(contains(h));
    detach(h);
    insert_node(Node{values_[h].key, h, values_[h].key_alg}, values_[h].deadline);
    cached_top_ = kInvalidHandle;
  }

  /// True iff `h` currently refers to a live element.
  [[nodiscard]] bool contains(HeapHandle h) const noexcept {
    return h < loc_.size() && loc_[h].where != kFree;
  }

  /// Verifies every structural invariant; test hook, O(n).
  [[nodiscard]] bool validate() const {
    const bool fl = flip();
    std::size_t ring_seen = 0;
    const std::size_t mask = buckets_.empty() ? 0 : buckets_.size() - 1;
    for (std::size_t idx = 0; idx < buckets_.size(); ++idx) {
      const std::vector<Node>& b = buckets_[idx];
      const bool bit = (words_[idx >> 6] >> (idx & 63)) & 1u;
      if (bit != !b.empty()) return false;
      for (std::size_t k = 0; k < b.size(); ++k) {
        const Node& nd = b[k];
        const Loc& l = loc_[nd.handle];
        if (l.where != static_cast<std::int32_t>(idx) || l.pos != k) return false;
        const Time d = values_[nd.handle].deadline;
        if ((static_cast<std::size_t>(d) & mask) != idx) return false;
        if (d < base_ || d > hi_) return false;
        if (d - base_ >= static_cast<Time>(buckets_.size())) return false;
        if (!(nd.key == values_[nd.handle].key) ||
            nd.key_alg != values_[nd.handle].key_alg) {
          return false;
        }
        ++ring_seen;
      }
    }
    if (ring_seen != ring_count_) return false;
    for (std::size_t i = 0; i < side_.size(); ++i) {
      const Loc& l = loc_[side_[i].handle];
      if (l.where != kSide || l.pos != i) return false;
      if (i > 0 && node_less(side_[i], side_[(i - 1) / kArity], fl)) return false;
      if (!(side_[i].key == values_[side_[i].handle].key) ||
          side_[i].key_alg != values_[side_[i].handle].key_alg) {
        return false;
      }
    }
    if (ring_count_ + side_.size() != count_) return false;
    std::size_t live = 0;
    for (const Loc& l : loc_)
      if (l.where != kFree) ++live;
    return live == count_;
  }

 private:
  struct Node {
    PackedKey key;
    HeapHandle handle;
    std::uint8_t key_alg;
  };

  /// Location of a live element: kSide = side-heap position, kFree =
  /// recycled handle, otherwise the ring bucket index (pos = index
  /// within the bucket or the side heap).
  static constexpr std::int32_t kFree = -1;
  static constexpr std::int32_t kSide = -2;
  struct Loc {
    std::int32_t where = kFree;
    std::uint32_t pos = 0;
  };

  static constexpr std::size_t kInitialBuckets = 256;      // power of two, >= 64
  static constexpr std::size_t kMaxBuckets = 1u << 17;     // beyond: side heap
  static constexpr std::size_t kArity = 4;                 // side-heap fan-out

  /// PD2's test-only b-bit fault injection inverts the comparator at run
  /// time; keys are packed for the unflipped rule, so a PD2 queue loads
  /// the flag once per operation and compares through the legacy chain
  /// while it is set.
  [[nodiscard]] bool flip() const noexcept {
    return flip_guarded_ && pd2_b_bit_flip_for_test();
  }

  [[nodiscard]] bool node_less(const Node& a, const Node& b, bool fl) const noexcept {
    if (a.key_alg == packed_alg_ && b.key_alg == packed_alg_ && !fl) [[likely]] {
      return a.key < b.key;
    }
    return less_.compare_legacy(values_[a.handle], values_[b.handle]);
  }

  void release_handle(HeapHandle h) {
    loc_[h].where = kFree;
    free_slots_.push_back(h);
    --count_;
    cached_top_ = kInvalidHandle;
  }

  void insert_node(Node nd, Time d) {
    cached_bucket_ = -1;
    if (buckets_.empty()) {
      buckets_.resize(kInitialBuckets);
      words_.assign(kInitialBuckets >> 6, 0);
    }
    if (ring_count_ == 0) {
      // An empty ring has no window to respect: re-anchor it at d.
      base_ = d;
      hi_ = d;
      ring_insert(nd, d);
      return;
    }
    if (d >= base_) {
      const Time delta = d - base_;
      if (delta < static_cast<Time>(buckets_.size()) || grow_to(delta)) {
        if (d > hi_) hi_ = d;
        ring_insert(nd, d);
        return;
      }
    } else {
      // Below the scan cursor (a release more urgent than every queued
      // subtask — the common case right after a pop advanced base_ to
      // the ring minimum).  Rewinding base_ is safe whenever the whole
      // span [d, hi_] still fits the ring: no two live entries can then
      // share a bucket with different deadlines.
      const Time span = hi_ - d;
      if (span < static_cast<Time>(buckets_.size()) || grow_to(span)) {
        base_ = d;
        ring_insert(nd, d);
        return;
      }
    }
    side_sift_up(append_side(nd));
  }

  void ring_insert(Node nd, Time d) {
    const std::size_t idx = static_cast<std::size_t>(d) & (buckets_.size() - 1);
    std::vector<Node>& b = buckets_[idx];
    if (b.empty()) words_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    loc_[nd.handle] = Loc{static_cast<std::int32_t>(idx),
                          static_cast<std::uint32_t>(b.size())};
    b.push_back(nd);
    ++ring_count_;
  }

  /// Unlinks `h` from the ring or side heap without freeing the handle.
  void detach(HeapHandle h) {
    const Loc l = loc_[h];
    assert(l.where != kFree);
    if (l.where == kSide) {
      side_erase_at(l.pos);
      return;
    }
    std::vector<Node>& b = buckets_[static_cast<std::size_t>(l.where)];
    if (l.pos + 1 != b.size()) {
      b[l.pos] = b.back();
      loc_[b[l.pos].handle].pos = l.pos;
    }
    b.pop_back();
    if (b.empty()) {
      words_[static_cast<std::size_t>(l.where) >> 6] &=
          ~(std::uint64_t{1} << (static_cast<std::size_t>(l.where) & 63));
    }
    --ring_count_;
  }

  /// First non-empty bucket in wrapped index order from base_ — the
  /// lowest live ring deadline.  Advances base_ to it (a pure scan
  /// hint: no live ring entry is below the found minimum).
  [[nodiscard]] std::size_t first_bucket() const {
    assert(ring_count_ > 0);
    const std::size_t mask = buckets_.size() - 1;
    const std::size_t i0 = static_cast<std::size_t>(base_) & mask;
    std::size_t w = i0 >> 6;
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i0 & 63));
    const std::size_t nwords = words_.size();
    for (;;) {
      if (word != 0) {
        const std::size_t idx =
            (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
        base_ += static_cast<Time>((idx - i0) & mask);
        return idx;
      }
      w = (w + 1 == nwords) ? 0 : w + 1;
      word = words_[w];
    }
  }

  /// Handle of the comparator-minimum element.  Two caches cover the hot
  /// access patterns: cached_top_ survives between top() and the pop that
  /// consumes it, and cached_bucket_ survives a run of consecutive pops
  /// (the scheduler pops M per quantum with no pushes in between), so
  /// only the first pop of a burst pays the bitmap scan.
  [[nodiscard]] HeapHandle find_top() const noexcept {
    assert(count_ > 0);
    if (cached_top_ != kInvalidHandle) return cached_top_;
    const bool fl = flip();
    const Node* best = nullptr;
    if (ring_count_ > 0) {
      if (cached_bucket_ < 0 ||
          buckets_[static_cast<std::size_t>(cached_bucket_)].empty()) {
        cached_bucket_ = static_cast<std::int32_t>(first_bucket());
      }
      const std::vector<Node>& b = buckets_[static_cast<std::size_t>(cached_bucket_)];
      best = &b[0];
      for (std::size_t k = 1; k < b.size(); ++k) {
        if (node_less(b[k], *best, fl)) best = &b[k];
      }
    }
    if (!side_.empty() && (best == nullptr || node_less(side_[0], *best, fl))) {
      best = &side_[0];
    }
    cached_top_ = best->handle;
    return cached_top_;
  }

  /// Grows the ring to cover `delta`; false when capped (side heap takes
  /// the entry).  Re-buckets every ring entry under the new mask.
  bool grow_to(Time delta) {
    std::size_t want = buckets_.size();
    while (static_cast<Time>(want) <= delta) {
      if (want >= kMaxBuckets) return false;
      want <<= 1;
    }
    std::vector<std::vector<Node>> grown(want);
    for (std::vector<Node>& b : buckets_) {
      for (const Node& nd : b) {
        grown[static_cast<std::size_t>(values_[nd.handle].deadline) & (want - 1)]
            .push_back(nd);
      }
    }
    buckets_ = std::move(grown);
    cached_bucket_ = -1;
    words_.assign(want >> 6, 0);
    for (std::size_t idx = 0; idx < buckets_.size(); ++idx) {
      const std::vector<Node>& b = buckets_[idx];
      if (b.empty()) continue;
      words_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
      for (std::size_t k = 0; k < b.size(); ++k) {
        loc_[b[k].handle] =
            Loc{static_cast<std::int32_t>(idx), static_cast<std::uint32_t>(k)};
      }
    }
    return true;
  }

  // --- side heap: 4-ary, ordered by the full comparator ------------------

  [[nodiscard]] std::size_t append_side(Node nd) {
    const std::size_t pos = side_.size();
    side_.push_back(nd);
    loc_[nd.handle] = Loc{kSide, static_cast<std::uint32_t>(pos)};
    return pos;
  }

  void place_side(std::size_t pos, Node nd) noexcept {
    loc_[nd.handle] = Loc{kSide, static_cast<std::uint32_t>(pos)};
    side_[pos] = nd;
  }

  bool side_sift_up(std::size_t pos) {
    const bool fl = flip();
    const Node node = side_[pos];
    bool moved = false;
    while (pos > 0) {
      const std::size_t parent = (pos - 1) / kArity;
      if (!node_less(node, side_[parent], fl)) break;
      place_side(pos, side_[parent]);
      pos = parent;
      moved = true;
    }
    place_side(pos, node);
    return moved;
  }

  void side_sift_down(std::size_t pos) {
    const bool fl = flip();
    const Node node = side_[pos];
    const std::size_t n = side_.size();
    for (;;) {
      const std::size_t first = kArity * pos + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (node_less(side_[c], side_[best], fl)) best = c;
      }
      if (!node_less(side_[best], node, fl)) break;
      place_side(pos, side_[best]);
      pos = best;
    }
    place_side(pos, node);
  }

  void side_erase_at(std::size_t pos) {
    const Node last = side_.back();
    side_.pop_back();
    if (pos < side_.size()) {
      place_side(pos, last);
      if (!side_sift_up(pos)) side_sift_down(pos);
    }
  }

  SubtaskPriority less_;
  std::uint8_t packed_alg_;  ///< key_alg value the fast path accepts (kKeyNone disables)
  bool flip_guarded_;        ///< PD2: consult the fault-injection flag per operation
  std::size_t count_ = 0;    ///< live elements (ring + side)

  std::vector<std::vector<Node>> buckets_;  ///< ring, size a power of two
  std::vector<std::uint64_t> words_;        ///< bitmap of non-empty buckets
  std::size_t ring_count_ = 0;
  /// Lower bound on every live ring deadline; monotone while the ring is
  /// non-empty, re-anchored freely when it drains.  Mutable: advancing it
  /// during a const scan is a pure hint.
  mutable Time base_ = 0;
  /// Upper bound on every live ring deadline (conservative: not lowered
  /// by erases; reset when the ring drains).  hi_ - base_ < size always.
  Time hi_ = 0;
  mutable HeapHandle cached_top_ = kInvalidHandle;
  /// Ring bucket holding the minimum deadline, or -1; valid while only
  /// erases happen (erases never lower another bucket's deadline).
  mutable std::int32_t cached_bucket_ = -1;

  std::vector<Node> side_;              ///< comparator-ordered out-of-window heap
  std::vector<SubtaskRef> values_;      ///< handle -> element (never moved)
  std::vector<Loc> loc_;                ///< handle -> current location
  std::vector<HeapHandle> free_slots_;  ///< recycled handles
};

}  // namespace pfair
