#include "core/window_diagram.h"

#include <algorithm>
#include <sstream>

#include "core/windows.h"

namespace pfair {

std::string render_window_diagram(std::int64_t e, std::int64_t p, SubtaskIndex first,
                                  SubtaskIndex last, const std::vector<Time>& offsets) {
  std::ostringstream os;
  Time width = 0;
  const auto offset_of = [&](SubtaskIndex i) -> Time {
    const std::size_t k = static_cast<std::size_t>(i - first);
    return k < offsets.size() ? offsets[k] : (offsets.empty() ? 0 : offsets.back());
  };
  for (SubtaskIndex i = first; i <= last; ++i) {
    width = std::max(width, offset_of(i) + subtask_deadline(e, p, i));
  }
  for (SubtaskIndex i = last; i >= first; --i) {  // top row = latest, like Fig. 1
    const Time off = offset_of(i);
    const Time r = off + subtask_release(e, p, i);
    const Time d = off + subtask_deadline(e, p, i);
    os << "T" << i << (i < 10 ? "  |" : " |");
    for (Time t = 0; t < width; ++t) {
      if (t < r || t >= d) {
        os << ' ';
      } else if (t == r) {
        os << '[';
      } else {
        os << '=';
      }
    }
    os << "|\n";
  }
  os << "    +";
  for (Time t = 0; t < width; ++t)
    os << (t % 5 == 0 ? static_cast<char>('0' + (t / 5) % 10) : '-');
  os << "+  (digit marks every 5 slots)\n";
  return os.str();
}

}  // namespace pfair
