// Dynamic task admission rules (paper Sec. 2, "Dynamic task systems",
// after Srinivasan & Anderson 2002).
//
// A task may JOIN a running system at any time as long as Eq. (2)
// continues to hold (sum of weights <= M).  LEAVING is restricted so a
// task cannot bank negative lag, leave, re-join, and effectively run
// above its rate:
//   - a LIGHT task may leave at or after d(T_i) + b(T_i), where T_i is
//     its last-scheduled subtask;
//   - a HEAVY task may leave only strictly after its next group
//     deadline;
//   - a task that has never been allocated a quantum may leave anytime.
#pragma once

#include "core/task.h"
#include "core/windows.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair {

/// True iff a task of weight `w` may join when `current_total` weight is
/// already admitted on `m` processors.
[[nodiscard]] inline bool may_join(const Rational& current_total, const Rational& w,
                                   int m) noexcept {
  return current_total + w <= Rational(m);
}

/// Earliest time a task with weight e/p whose last-scheduled subtask was
/// index `i` (with accumulated window offset `offset`) may leave the
/// system.  `i == 0` means never scheduled.
[[nodiscard]] inline Time earliest_leave_time(std::int64_t e, std::int64_t p, SubtaskIndex i,
                                              Time offset) noexcept {
  if (i == 0) return 0;
  if (is_heavy(e, p)) return offset + group_deadline(e, p, i) + 1;
  return offset + subtask_deadline(e, p, i) + b_bit(e, p, i);
}

}  // namespace pfair
