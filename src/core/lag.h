// Lag bookkeeping (paper Sec. 2).
//
// lag(T, t) = wt(T) * t - (quanta allocated to T in [0, t)).  A schedule
// is Pfair iff -1 < lag(T, t) < 1 for all T and t.  Exact rationals keep
// the strict inequalities testable.
#pragma once

#include "util/rational.h"
#include "util/types.h"

namespace pfair {

/// Exact lag of a task with weight e/p that has received `allocated`
/// quanta by time `t` (synchronous start at time 0).
[[nodiscard]] inline Rational lag(std::int64_t e, std::int64_t p, Time t,
                                  std::int64_t allocated) noexcept {
  return Rational(e, p) * Rational(t) - Rational(allocated);
}

/// True iff -1 < lag < 1 (the Pfair condition, Eq. (1)).
[[nodiscard]] inline bool lag_within_pfair_bounds(std::int64_t e, std::int64_t p, Time t,
                                                  std::int64_t allocated) noexcept {
  const Rational l = lag(e, p, t, allocated);
  return Rational(-1) < l && l < Rational(1);
}

/// ERfair only requires the upper bound (subtasks may run arbitrarily
/// early, so lag may be any negative value, but must stay < 1).
[[nodiscard]] inline bool lag_within_erfair_bounds(std::int64_t e, std::int64_t p, Time t,
                                                   std::int64_t allocated) noexcept {
  return lag(e, p, t, allocated) < Rational(1);
}

}  // namespace pfair
