// Supertask packing (paper Sec. 5.5).
//
// "The supertasking approach is attractive primarily because it
// combines the benefits of both Pfair scheduling and partitioning.  (In
// fact, both EDF-FF and ordinary Pfair scheduling can be seen as
// special cases of the supertasking approach.)"
//
// This module realises the spectrum: it packs a task set into up to G
// supertasks (first-fit decreasing by weight), each competing with the
// Holman-Anderson reweighted weight (cumulative + 1/p_min, the price of
// guaranteed component deadlines under internal EDF).  Tasks that do
// not fit into any group remain migratory Pfair tasks.
//   - G = 0             -> ordinary global Pfair scheduling;
//   - G = M, everything
//     packed, servers
//     bound to CPUs     -> an EDF-FF-like system hosted inside Pfair;
//   - anything between  -> hybrid.
#pragma once

#include <vector>

#include "core/supertask.h"
#include "core/task.h"
#include "util/rational.h"

namespace pfair {

struct PackingResult {
  std::vector<SupertaskSpec> supertasks;  ///< one per non-empty group
  std::vector<Task> migratory;            ///< tasks left global
  /// Total competing weight of the packed system: sum of supertask
  /// weights plus migratory weights.  Packing is a *trade*: this
  /// exceeds the raw total by the reweighting overhead.
  Rational total_weight{0};

  [[nodiscard]] Rational reweighting_overhead(const TaskSet& original) const {
    return total_weight - original.total_weight();
  }
};

/// Packs `tasks` into at most `groups` supertasks.  A task joins a
/// group only if the group's *reweighted* competing weight stays <= 1.
/// Pass reweight = false to pack at cumulative weight (unsafe — Fig. 5 —
/// but useful for experiments).
[[nodiscard]] PackingResult pack_into_supertasks(const TaskSet& tasks, int groups,
                                                 bool reweight = true);

}  // namespace pfair
