// Task model: periodic, sporadic, and intra-sporadic (IS) tasks.
//
// All timing parameters are integer quanta.  A task's rate is its weight
// e/p; the IS generalisation allows per-subtask eligibility slack (late
// "packet arrivals" shift the remaining window chain; early arrivals make
// a subtask eligible before its Pfair release without moving its
// deadline — paper Sec. 2, "Rate-based Pfair").
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "core/windows.h"
#include "util/rational.h"
#include "util/types.h"

namespace pfair {

/// How subtasks of a task become eligible.
enum class TaskKind : std::uint8_t {
  kPeriodic,       ///< subtask T_i eligible exactly at r(T_i)
  kEarlyRelease,   ///< ERfair: eligible as soon as predecessor completes
  kIntraSporadic,  ///< eligibility controlled by external arrivals
};

/// Static description of a task submitted to the scheduler.
struct Task {
  std::int64_t execution = 1;  ///< e: quanta per job
  std::int64_t period = 1;     ///< p: quanta between ideal job releases
  Time phase = 0;              ///< release offset of the first job
                               ///< (asynchronous periodic systems, [4])
  TaskKind kind = TaskKind::kPeriodic;
  std::string name;  ///< optional label used in traces

  [[nodiscard]] Rational weight() const noexcept { return Rational(execution, period); }
  [[nodiscard]] bool heavy() const noexcept { return is_heavy(execution, period); }
  [[nodiscard]] bool valid() const noexcept {
    return execution > 0 && period > 0 && execution <= period && phase >= 0;
  }
};

/// Convenience factory.
[[nodiscard]] inline Task make_task(std::int64_t e, std::int64_t p,
                                    TaskKind kind = TaskKind::kPeriodic,
                                    std::string name = {}) {
  Task t;
  t.execution = e;
  t.period = p;
  t.kind = kind;
  t.name = std::move(name);
  assert(t.valid());
  return t;
}

/// A set of tasks plus aggregate feasibility queries.
class TaskSet {
 public:
  TaskSet() = default;
  explicit TaskSet(std::vector<Task> tasks) : tasks_(std::move(tasks)) {}

  TaskId add(Task t) {
    assert(t.valid());
    tasks_.push_back(std::move(t));
    return static_cast<TaskId>(tasks_.size() - 1);
  }

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const Task& operator[](TaskId id) const noexcept { return tasks_[id]; }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }

  /// Exact total utilization sum(e_i / p_i).
  [[nodiscard]] Rational total_weight() const noexcept {
    Rational sum(0);
    for (const Task& t : tasks_) sum += t.weight();
    return sum;
  }

  /// Pfair feasibility on m processors (paper Eq. (2)): sum wt(T) <= m.
  [[nodiscard]] bool feasible_on(int m) const noexcept {
    return total_weight() <= Rational(m) &&
           static_cast<std::size_t>(m) > 0;
  }

  /// Smallest m for which the set is Pfair-feasible.
  [[nodiscard]] int min_processors() const noexcept {
    return static_cast<int>(total_weight().ceil());
  }

  /// LCM of all periods (saturating); the schedule repeats with this
  /// period for synchronous periodic systems.
  [[nodiscard]] std::int64_t hyperperiod() const noexcept {
    std::int64_t h = 1;
    for (const Task& t : tasks_) h = saturating_lcm(h, t.period);
    return h;
  }

 private:
  std::vector<Task> tasks_;
};

}  // namespace pfair
