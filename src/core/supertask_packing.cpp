#include "core/supertask_packing.h"

#include <algorithm>
#include <numeric>

namespace pfair {

namespace {

/// Competing weight of a component group under the given policy.
Rational group_weight(const std::vector<Task>& components, bool reweight) {
  Rational w(0);
  std::int64_t pmin = 0;
  for (const Task& c : components) {
    w += c.weight();
    if (pmin == 0 || c.period < pmin) pmin = c.period;
  }
  if (reweight && pmin > 0) w += Rational(1, pmin);
  return w;
}

}  // namespace

PackingResult pack_into_supertasks(const TaskSet& tasks, int groups, bool reweight) {
  PackingResult res;
  std::vector<std::vector<Task>> bins;

  // First-fit decreasing by weight: heavy tasks seed groups, light
  // tasks fill the gaps (and light tasks are also the ones whose
  // context-switch savings motivate packing).
  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[static_cast<TaskId>(b)].weight() < tasks[static_cast<TaskId>(a)].weight();
  });

  for (const std::size_t i : order) {
    const Task& t = tasks[static_cast<TaskId>(i)];
    bool placed = false;
    for (auto& bin : bins) {
      bin.push_back(t);
      if (group_weight(bin, reweight) <= Rational(1)) {
        placed = true;
        break;
      }
      bin.pop_back();
    }
    if (!placed && static_cast<int>(bins.size()) < groups) {
      bins.emplace_back();
      bins.back().push_back(t);
      if (group_weight(bins.back(), reweight) <= Rational(1)) {
        placed = true;
      } else {
        bins.pop_back();  // task too heavy to host even alone (reweighted)
      }
    }
    if (!placed) res.migratory.push_back(t);
  }

  for (auto& bin : bins) {
    SupertaskSpec spec = reweight ? make_reweighted_supertask(std::move(bin))
                                  : make_supertask(std::move(bin));
    res.total_weight += spec.competing_weight();
    res.supertasks.push_back(std::move(spec));
  }
  for (const Task& t : res.migratory) res.total_weight += t.weight();
  return res;
}

}  // namespace pfair
