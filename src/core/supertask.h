// Supertasks (paper Sec. 5.5, after Moir & Ramamurthy 1999 and
// Holman & Anderson 2001).
//
// A supertask S replaces a set of component tasks that are statically
// bound to one processor.  S competes in the global Pfair schedule with
// (at least) the cumulative weight of its components; whenever S is
// allocated a quantum, an internal uniprocessor scheduler (EDF here)
// picks which component runs.  With weight exactly equal to the
// cumulative component weight, components can miss deadlines under PF /
// PD / PD2 (Fig. 5); Holman & Anderson showed that inflating S's weight
// by 1/p_min (p_min = smallest component period) restores all component
// deadlines when EDF is used internally.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "core/task.h"
#include "util/rational.h"

namespace pfair {

/// Static description of a supertask: its component tasks plus the
/// weight it competes with in the global schedule.
struct SupertaskSpec {
  std::vector<Task> components;
  /// Weight S competes with, as a reduced fraction e/p.  Built by the
  /// factories below.
  std::int64_t execution = 0;
  std::int64_t period = 1;
  std::string name;

  [[nodiscard]] Rational competing_weight() const noexcept {
    return Rational(execution, period);
  }
  [[nodiscard]] Rational cumulative_component_weight() const noexcept {
    Rational sum(0);
    for (const Task& c : components) sum += c.weight();
    return sum;
  }
  [[nodiscard]] std::int64_t min_component_period() const noexcept {
    std::int64_t m = components.empty() ? 1 : components.front().period;
    for (const Task& c : components)
      if (c.period < m) m = c.period;
    return m;
  }
};

/// Supertask competing with exactly the cumulative component weight
/// (the Moir–Ramamurthy construction that Fig. 5 shows can miss).
[[nodiscard]] SupertaskSpec make_supertask(std::vector<Task> components, std::string name = {});

/// Supertask with the Holman–Anderson reweighting: competing weight =
/// cumulative weight + 1/p_min, capped at 1.  Sufficient for internal
/// EDF to meet all component deadlines.
[[nodiscard]] SupertaskSpec make_reweighted_supertask(std::vector<Task> components,
                                                      std::string name = {});

}  // namespace pfair
