#include "core/windows.h"

namespace pfair {

Time group_deadline_by_definition(std::int64_t e, std::int64_t p, SubtaskIndex i) {
  assert(e > 0 && e <= p && i >= 1);
  if (!is_heavy(e, p)) return 0;
  if (e == p) return subtask_deadline(e, p, i) + p;
  const Time di = subtask_deadline(e, p, i);
  // Scan candidate ending times t >= d(T_i).  Both conditions reference a
  // subtask T_k with k >= i; deadlines advance by p every e subtasks, so
  // scanning k in [i, i + e + 1] covers one full period past d(T_i),
  // which must contain a cascade end (every job ends with b = 0).
  Time best = -1;
  for (SubtaskIndex k = i; k <= i + e + 1; ++k) {
    const Time dk = subtask_deadline(e, p, k);
    if (b_bit(e, p, k) == 0 && dk >= di && (best < 0 || dk < best)) best = dk;
    if (window_length(e, p, k) == 3 && dk - 1 >= di && (best < 0 || dk - 1 < best))
      best = dk - 1;
  }
  assert(best >= 0);
  return best;
}

}  // namespace pfair
