// Pfair subtask window algebra (paper Sec. 2).
//
// A periodic task T with integer execution cost e and integer period p
// (weight wt(T) = e/p, 0 < e <= p) is divided into quantum-length
// subtasks T_1, T_2, ...  Subtask T_i must execute inside its window
// [r(T_i), d(T_i)) or the Pfair lag bound (-1, 1) is violated:
//
//   r(T_i) = floor((i-1) / wt(T)) = floor((i-1) * p / e)
//   d(T_i) = ceil(i / wt(T))      = ceil(i * p / e)
//
// All functions here are pure integer arithmetic on (e, p, i); absolute
// times for later jobs / IS offsets are obtained by shifting.
#pragma once

#include "util/math.h"
#include "util/types.h"

namespace pfair {

/// Pseudo-release of subtask i (1-based) of a task with weight e/p.
[[nodiscard]] constexpr Time subtask_release(std::int64_t e, std::int64_t p,
                                             SubtaskIndex i) noexcept {
  assert(e > 0 && e <= p && i >= 1);
  return floor_div(checked_mul(i - 1, p), e);
}

/// Pseudo-deadline of subtask i: the subtask must be scheduled in a slot
/// strictly before this time.
[[nodiscard]] constexpr Time subtask_deadline(std::int64_t e, std::int64_t p,
                                              SubtaskIndex i) noexcept {
  assert(e > 0 && e <= p && i >= 1);
  return ceil_div(checked_mul(i, p), e);
}

/// Window length |w(T_i)| = d(T_i) - r(T_i).
[[nodiscard]] constexpr Time window_length(std::int64_t e, std::int64_t p,
                                           SubtaskIndex i) noexcept {
  return subtask_deadline(e, p, i) - subtask_release(e, p, i);
}

/// PD2 b-bit: 1 iff w(T_i) overlaps w(T_{i+1}), i.e. r(T_{i+1}) = d(T_i)-1,
/// which holds exactly when i*p is not a multiple of e.
[[nodiscard]] constexpr int b_bit(std::int64_t e, std::int64_t p, SubtaskIndex i) noexcept {
  assert(e > 0 && e <= p && i >= 1);
  return checked_mul(i, p) % e != 0 ? 1 : 0;
}

/// True iff weight e/p is "heavy" (wt >= 1/2).  Heavy tasks are the only
/// ones with length-2 windows, and the only ones with nonzero group
/// deadlines.
[[nodiscard]] constexpr bool is_heavy(std::int64_t e, std::int64_t p) noexcept {
  return 2 * e >= p;
}

/// PD2 group deadline of subtask i (paper Sec. 2): the earliest time by
/// which a cascade of forced length-2-window allocations starting at T_i
/// must end.  Closed form for a heavy task of weight e/p < 1:
///
///   D(T_i) = ceil( ceil(d(T_i) * (p-e) / p) * p / (p-e) )
///
/// By convention D = 0 for light tasks (they have no length-2 windows)
/// and for weight-1 tasks (every slot is a window; cascades never end,
/// but such a task is always scheduled, so the tie-break is moot — we
/// return a value larger than any deadline in the first job instead).
[[nodiscard]] constexpr Time group_deadline(std::int64_t e, std::int64_t p,
                                            SubtaskIndex i) noexcept {
  assert(e > 0 && e <= p && i >= 1);
  if (!is_heavy(e, p)) return 0;
  if (e == p) return subtask_deadline(e, p, i) + p;  // weight 1: see doc block
  const std::int64_t d = subtask_deadline(e, p, i);
  const std::int64_t k = ceil_div(checked_mul(d, p - e), p);
  return ceil_div(checked_mul(k, p), p - e);
}

/// Group deadline computed directly from the paper's definition (earliest
/// t >= d(T_i) such that (t = d(T_k) && b(T_k) = 0) or (t + 1 = d(T_k) &&
/// |w(T_k)| = 3) for some k >= i).  O(p) scan; used as the test oracle
/// for the closed form above.
[[nodiscard]] Time group_deadline_by_definition(std::int64_t e, std::int64_t p, SubtaskIndex i);

/// Number of subtasks of a job: job k (1-based) of T consists of subtasks
/// (k-1)*e + 1 ... k*e, and its windows satisfy
/// r(T_{i+e}) = r(T_i) + p,  d(T_{i+e}) = d(T_i) + p.
[[nodiscard]] constexpr SubtaskIndex job_first_subtask(std::int64_t e, std::int64_t k) noexcept {
  return checked_mul(k - 1, e) + 1;
}

/// Incremental generator of consecutive subtask windows.
///
/// The closed forms above cost one 64-bit division each, and the
/// simulator needs release, deadline, b-bit and job position for every
/// subtask it enqueues — on the hot path that was ~6 divisions per
/// quantum.  The floor sequence r(T_{i+1}) = floor(i*p/e) instead
/// advances by the constant quotient p/e plus a remainder carry, so a
/// cursor walking i -> i+1 needs only additions and one compare:
///
///   rel_next' = rel_next + p/e + [rem_next + p%e >= e]
///   rem_next' = (rem_next + p%e) mod e        (single conditional subtract)
///
/// and the other quantities are derived:
///
///   d(T_i) = ceil(i*p/e) = rel_next + [rem_next != 0]
///   b(T_i) = [i*p mod e != 0] = [rem_next != 0]
///
/// reset() re-derives the state from the closed forms (divisions, but
/// only on task join / reweight); advance() must be called exactly once
/// per subtask-index increment.  All values are job-relative (offset 0);
/// callers add the task's absolute offset.
struct WindowCursor {
  std::int64_t e = 1;
  std::int64_t p = 1;
  SubtaskIndex index = 1;      ///< the subtask this cursor describes
  Time rel = 0;                ///< subtask_release(e, p, index)
  Time rel_next = 0;           ///< subtask_release(e, p, index + 1) = floor(index*p/e)
  std::int64_t rem_next = 0;   ///< (index * p) mod e
  std::int64_t idx_in_job = 1; ///< position within the job: ((index-1) mod e) + 1
  Time job_rel = 0;            ///< release of the enclosing job: ((index-1)/e) * p
  std::int64_t p_div_e = 1;    ///< floor(p / e), constant per (e, p)
  std::int64_t p_mod_e = 0;    ///< p mod e, constant per (e, p)

  constexpr void reset(std::int64_t e_in, std::int64_t p_in, SubtaskIndex i) noexcept {
    assert(e_in > 0 && e_in <= p_in && i >= 1);
    e = e_in;
    p = p_in;
    index = i;
    p_div_e = p / e;
    p_mod_e = p % e;
    rel = subtask_release(e, p, i);
    rel_next = subtask_release(e, p, i + 1);
    rem_next = checked_mul(i, p) - e * rel_next;
    idx_in_job = (i - 1) % e + 1;
    job_rel = (i - 1) / e * p;
  }

  constexpr void advance() noexcept {
    ++index;
    rel = rel_next;
    rel_next += p_div_e;
    rem_next += p_mod_e;
    if (rem_next >= e) {
      ++rel_next;
      rem_next -= e;
    }
    if (idx_in_job == e) {
      idx_in_job = 1;
      job_rel += p;
    } else {
      ++idx_in_job;
    }
  }

  /// b_bit(e, p, index) without the modulo.
  [[nodiscard]] constexpr int b() const noexcept { return rem_next != 0 ? 1 : 0; }

  /// subtask_deadline(e, p, index) without the division.
  [[nodiscard]] constexpr Time deadline() const noexcept {
    return rel_next + (rem_next != 0 ? 1 : 0);
  }

  /// True iff this subtask is the last of its job (index mod e == 0).
  [[nodiscard]] constexpr bool last_of_job() const noexcept { return idx_in_job == e; }
};

}  // namespace pfair
