#include "sync/quantum_lock.h"

#include <algorithm>

namespace pfair {

CsAudit replay_quantum(const QuantumLockModel& model, const std::vector<CsRequest>& requests) {
  CsAudit audit;
  double cursor = 0.0;  // earliest time the next section may start
  for (const CsRequest& req : requests) {
    assert(req.offset_us >= 0.0 && req.offset_us <= model.quantum_us());
    assert(req.length_us >= 0.0 && req.length_us <= model.max_cs_us());
    const double start = std::max(cursor, req.offset_us);
    if (!model.admissible(start, req.length_us)) {
      ++audit.deferred;
      audit.wasted_tail_us = std::max(audit.wasted_tail_us, model.quantum_us() - start);
      // Everything after this point in the quantum is forfeited for
      // locking purposes; remaining requests defer too.
      cursor = model.quantum_us();
      continue;
    }
    if (start + req.length_us > model.quantum_us()) audit.boundary_violation = true;
    ++audit.executed;
    cursor = start + req.length_us;
  }
  return audit;
}

}  // namespace pfair
