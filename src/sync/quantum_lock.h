// Synchronization under Pfair tight synchrony (paper Sec. 5.1).
//
// Because every subtask's execution is non-preemptive within its slot,
// lock-based synchronization can avoid all preemption-related problems
// by ensuring no lock is held across a quantum boundary: a critical
// section that cannot complete before the boundary is *deferred* to the
// task's next quantum.  This module provides
//   - the admission rule and its analytic costs (worst-case deferral,
//     worst-case blocking, execution-cost inflation), and
//   - a small audit engine that replays a trace of critical-section
//     requests and checks the no-lock-across-boundary invariant while
//     computing the realised delays (used by tests and examples), and
//   - the lock-free retry bound that tight synchrony yields (Sec. 5.1,
//     in the spirit of Holman & Anderson [18]).
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace pfair {

/// Analytic model of quantum-boundary locking.
class QuantumLockModel {
 public:
  QuantumLockModel(double quantum_us, double max_critical_section_us)
      : quantum_us_(quantum_us), max_cs_us_(max_critical_section_us) {
    assert(quantum_us_ > 0.0);
    assert(max_cs_us_ >= 0.0 && max_cs_us_ < quantum_us_);
  }

  /// May a critical section of length `cs_us` start at offset
  /// `offset_us` within a quantum?  Only if it completes by the
  /// boundary.
  [[nodiscard]] bool admissible(double offset_us, double cs_us) const noexcept {
    return offset_us + cs_us <= quantum_us_;
  }

  /// A deferred section wastes at most the refused tail of the quantum,
  /// which is strictly less than the section length itself.
  [[nodiscard]] double worst_case_deferral_us() const noexcept { return max_cs_us_; }

  /// Blocking on a held lock is bounded by one critical-section length
  /// of a task running in the same slot (locks never persist across
  /// slots, so no remote/preempted holder can block longer).
  [[nodiscard]] double worst_case_blocking_us() const noexcept { return max_cs_us_; }

  /// Execution-cost inflation: each allocated quantum may forfeit up to
  /// max_cs at its end, so budgeting e * q / (q - max_cs) preserves
  /// guarantees.
  [[nodiscard]] double inflation_factor() const noexcept {
    return quantum_us_ / (quantum_us_ - max_cs_us_);
  }

  [[nodiscard]] double quantum_us() const noexcept { return quantum_us_; }
  [[nodiscard]] double max_cs_us() const noexcept { return max_cs_us_; }

 private:
  double quantum_us_;
  double max_cs_us_;
};

/// One critical-section request inside a task's allocated quantum.
struct CsRequest {
  double offset_us = 0.0;  ///< when within the quantum the task asks
  double length_us = 0.0;
};

/// Result of replaying one quantum's worth of requests under the defer
/// rule.
struct CsAudit {
  std::size_t executed = 0;   ///< sections run in this quantum
  std::size_t deferred = 0;   ///< sections pushed to the next quantum
  double wasted_tail_us = 0.0;  ///< quantum time forfeited by deferral
  bool boundary_violation = false;  ///< should always stay false
};

/// Replays `requests` (sorted by offset) issued during one quantum and
/// applies the defer rule.  Requests whose offset falls inside an
/// earlier section are started back-to-back (the task executes them
/// sequentially).
[[nodiscard]] CsAudit replay_quantum(const QuantumLockModel& model,
                                     const std::vector<CsRequest>& requests);

/// Retry bound for lock-free operations under Pfair scheduling on `m`
/// processors: within one quantum, an operation by one task can be
/// interfered with only by operations of the at most m - 1 tasks
/// scheduled concurrently, each completing at most
/// `ops_per_quantum` operations, so
///     attempts <= (m - 1) * ops_per_quantum + 1.
[[nodiscard]] constexpr std::int64_t lock_free_attempt_bound(
    int m, std::int64_t ops_per_quantum) noexcept {
  return static_cast<std::int64_t>(m - 1) * ops_per_quantum + 1;
}

}  // namespace pfair
