#include "partition/uni_partition.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "uniproc/analysis.h"
#include "util/rational.h"

namespace pfair {

const char* acceptance_name(Acceptance a) noexcept {
  switch (a) {
    case Acceptance::kEdfUtilization:
      return "EDF";
    case Acceptance::kRmLiuLayland:
      return "RM-LL";
    case Acceptance::kRmExact:
      return "RM-exact";
  }
  return "?";
}

namespace {

[[nodiscard]] bool accepts(const std::vector<UniTask>& members, const UniTask& candidate,
                           Acceptance acc) {
  std::vector<UniTask> with = members;
  with.push_back(candidate);
  switch (acc) {
    case Acceptance::kEdfUtilization:
      return edf_schedulable(with);
    case Acceptance::kRmLiuLayland:
      return rm_schedulable_ll(with);
    case Acceptance::kRmExact:
      return rm_schedulable_exact(with);
  }
  return false;
}

/// Remaining utilization headroom, used for the best/worst-fit choice
/// (acceptance may be non-utilization-based; headroom is still the
/// conventional fit metric).
[[nodiscard]] double load_of(const std::vector<UniTask>& members) {
  return total_utilization(members);
}

}  // namespace

UniPartitionResult partition_uni(const std::vector<UniTask>& tasks, int max_processors,
                                 Heuristic h, Acceptance acc) {
  UniPartitionResult res;
  res.assignment.assign(tasks.size(), -1);
  res.feasible = true;

  std::vector<std::size_t> order(tasks.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  const bool decreasing =
      h == Heuristic::kFirstFitDecreasing || h == Heuristic::kBestFitDecreasing;
  if (decreasing) {
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return tasks[a].utilization() > tasks[b].utilization();
    });
  }
  const Heuristic rule = decreasing
                             ? (h == Heuristic::kFirstFitDecreasing ? Heuristic::kFirstFit
                                                                    : Heuristic::kBestFit)
                             : h;

  std::vector<std::vector<UniTask>> procs;
  std::vector<std::vector<std::size_t>> proc_members;

  for (const std::size_t i : order) {
    assert(tasks[i].valid());
    int chosen = -1;
    for (int pnum = 0; pnum < static_cast<int>(procs.size()); ++pnum) {
      if (!accepts(procs[static_cast<std::size_t>(pnum)], tasks[i], acc)) continue;
      if (rule == Heuristic::kFirstFit) {
        chosen = pnum;
        break;
      }
      if (chosen == -1) {
        chosen = pnum;
        continue;
      }
      const double cur = load_of(procs[static_cast<std::size_t>(chosen)]);
      const double cand = load_of(procs[static_cast<std::size_t>(pnum)]);
      if (rule == Heuristic::kBestFit ? cand > cur : cand < cur) chosen = pnum;
    }
    if (chosen == -1) {
      if (static_cast<int>(procs.size()) < max_processors &&
          accepts({}, tasks[i], acc)) {
        procs.emplace_back();
        proc_members.emplace_back();
        chosen = static_cast<int>(procs.size()) - 1;
      } else {
        res.feasible = false;
        continue;
      }
    }
    procs[static_cast<std::size_t>(chosen)].push_back(tasks[i]);
    proc_members[static_cast<std::size_t>(chosen)].push_back(i);
    res.assignment[i] = chosen;
  }
  res.processors_used = static_cast<int>(procs.size());
  return res;
}

int min_processors_uni(const std::vector<UniTask>& tasks, Heuristic h, Acceptance acc,
                       int hard_cap) {
  double total = 0.0;
  for (const UniTask& t : tasks) total += t.utilization();
  int m = std::max(1, static_cast<int>(std::ceil(total - 1e-12)));
  for (; m <= hard_cap; ++m) {
    if (partition_uni(tasks, m, h, acc).feasible) return m;
  }
  return -1;
}

}  // namespace pfair
