// Bin-packing partitioning heuristics (paper Sec. 3).
//
// Finding an optimal assignment of tasks to processors is NP-hard in the
// strong sense, so online partitioners use polynomial heuristics.  This
// module implements the ones the paper discusses — first fit, best fit,
// worst fit, and their decreasing-utilization variants — over exact
// rational utilizations, with a per-processor EDF acceptance test
// (total utilization <= 1).  The overhead-aware EDF-FF variant, whose
// acceptance test depends on co-located tasks, lives in src/overhead/.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rational.h"

namespace pfair {

enum class Heuristic : std::uint8_t {
  kFirstFit,            ///< first processor that accepts the task
  kBestFit,             ///< minimal remaining capacity after placement
  kWorstFit,            ///< maximal remaining capacity after placement
  kFirstFitDecreasing,  ///< FF after sorting by decreasing utilization
  kBestFitDecreasing,   ///< BF after sorting by decreasing utilization
};

[[nodiscard]] const char* heuristic_name(Heuristic h) noexcept;

struct PartitionResult {
  /// assignment[i] = processor of task i, or -1 if it did not fit.
  std::vector<int> assignment;
  int processors_used = 0;
  bool feasible = false;  ///< every task placed

  /// Per-processor total utilization (size = processors_used).
  std::vector<Rational> loads;
};

/// Partitions tasks with utilizations `u` onto at most `max_processors`
/// processors (pass a large value to emulate "as many as needed"; the
/// number actually opened is reported in processors_used).  Each
/// processor accepts a task iff its load stays <= 1 (the EDF test).
[[nodiscard]] PartitionResult partition(const std::vector<Rational>& u, int max_processors,
                                        Heuristic h);

/// Smallest processor count that renders `u` partitionable under `h`
/// (monotone in the processor count for FF/BF/WF-style heuristics, so a
/// linear scan from ceil(total) upward terminates quickly).
[[nodiscard]] int min_processors(const std::vector<Rational>& u, Heuristic h,
                                 int hard_cap = 1 << 16);

/// Worst-case achievable utilization of *any* partitioning heuristic on
/// m processors: (m + 1) / 2 (paper Sec. 3: m+1 tasks of utilization
/// slightly above 1/2 cannot be partitioned).
[[nodiscard]] double partitioning_worst_case_utilization(int m) noexcept;

/// Lopez et al. worst-case achievable utilization for EDF partitioning
/// when every task has utilization <= u_max:
/// (beta * m + 1) / (beta + 1), beta = floor(1 / u_max).
[[nodiscard]] double lopez_bound(int m, double u_max) noexcept;

/// The simpler bound the paper derives first: any task set with total
/// utilization <= m - (m - 1) * u_max is schedulable.
[[nodiscard]] double simple_partition_bound(int m, double u_max) noexcept;

}  // namespace pfair
