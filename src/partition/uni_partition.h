// Partitioning over concrete task sets with per-processor uniprocessor
// schedulability tests (paper Secs. 1 and 3).
//
// The generic heuristics in heuristics.h bin-pack pure utilizations
// with the EDF test (load <= 1).  Real partitioned systems differ by
// the *acceptance test*: RM-FF accepts a task on a processor only if
// the processor's task set stays RM-schedulable — either by the
// Liu-Layland bound (cheap, pessimistic; yields the 41%-ish
// multiprocessor guarantees the paper cites from Oh & Baker) or by
// exact response-time analysis (the "variable-sized bin" flavour the
// paper notes makes the packing problem harder).
#pragma once

#include <vector>

#include "partition/heuristics.h"
#include "uniproc/uni_task.h"

namespace pfair {

enum class Acceptance : std::uint8_t {
  kEdfUtilization,  ///< sum e/p <= 1 (exact for EDF)
  kRmLiuLayland,    ///< U <= n(2^{1/n} - 1) (sufficient for RM)
  kRmExact,         ///< response-time analysis (exact for RM)
};

[[nodiscard]] const char* acceptance_name(Acceptance a) noexcept;

struct UniPartitionResult {
  std::vector<int> assignment;  ///< per task (input order), -1 = unplaced
  int processors_used = 0;
  bool feasible = false;
};

/// Partitions `tasks` using heuristic `h` (first/best/worst fit and the
/// decreasing variants) under acceptance test `acc`, opening at most
/// `max_processors` processors.
[[nodiscard]] UniPartitionResult partition_uni(const std::vector<UniTask>& tasks,
                                               int max_processors, Heuristic h, Acceptance acc);

/// Smallest processor count rendering `tasks` partitionable.
[[nodiscard]] int min_processors_uni(const std::vector<UniTask>& tasks, Heuristic h,
                                     Acceptance acc, int hard_cap = 1 << 12);

}  // namespace pfair
