#include "partition/heuristics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace pfair {

const char* heuristic_name(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::kFirstFit:
      return "FF";
    case Heuristic::kBestFit:
      return "BF";
    case Heuristic::kWorstFit:
      return "WF";
    case Heuristic::kFirstFitDecreasing:
      return "FFD";
    case Heuristic::kBestFitDecreasing:
      return "BFD";
  }
  return "?";
}

namespace {

[[nodiscard]] bool decreasing_variant(Heuristic h) noexcept {
  return h == Heuristic::kFirstFitDecreasing || h == Heuristic::kBestFitDecreasing;
}

[[nodiscard]] Heuristic base_rule(Heuristic h) noexcept {
  switch (h) {
    case Heuristic::kFirstFitDecreasing:
      return Heuristic::kFirstFit;
    case Heuristic::kBestFitDecreasing:
      return Heuristic::kBestFit;
    default:
      return h;
  }
}

}  // namespace

PartitionResult partition(const std::vector<Rational>& u, int max_processors, Heuristic h) {
  assert(max_processors >= 0);
  PartitionResult res;
  res.assignment.assign(u.size(), -1);
  res.feasible = true;

  std::vector<std::size_t> order(u.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  if (decreasing_variant(h)) {
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return u[b] < u[a]; });
  }
  const Heuristic rule = base_rule(h);

  for (const std::size_t i : order) {
    assert(Rational(0) < u[i] && u[i] <= Rational(1));
    int chosen = -1;
    for (int pnum = 0; pnum < static_cast<int>(res.loads.size()); ++pnum) {
      const Rational after = res.loads[static_cast<std::size_t>(pnum)] + u[i];
      if (Rational(1) < after) continue;  // EDF acceptance: load must stay <= 1
      if (rule == Heuristic::kFirstFit) {
        chosen = pnum;
        break;
      }
      if (chosen == -1) {
        chosen = pnum;
        continue;
      }
      const Rational cur = res.loads[static_cast<std::size_t>(chosen)];
      const Rational cand = res.loads[static_cast<std::size_t>(pnum)];
      if (rule == Heuristic::kBestFit ? cur < cand : cand < cur) chosen = pnum;
    }
    if (chosen == -1) {
      if (static_cast<int>(res.loads.size()) < max_processors) {
        res.loads.emplace_back(0);
        chosen = static_cast<int>(res.loads.size()) - 1;
      } else {
        res.feasible = false;
        continue;  // task i stays unassigned
      }
    }
    res.loads[static_cast<std::size_t>(chosen)] += u[i];
    res.assignment[i] = chosen;
  }
  res.processors_used = static_cast<int>(res.loads.size());
  return res;
}

int min_processors(const std::vector<Rational>& u, Heuristic h, int hard_cap) {
  Rational total(0);
  for (const Rational& w : u) total += w;
  int m = static_cast<int>(std::max<std::int64_t>(1, total.ceil()));
  for (; m <= hard_cap; ++m) {
    if (partition(u, m, h).feasible) return m;
  }
  return -1;
}

double partitioning_worst_case_utilization(int m) noexcept {
  return (static_cast<double>(m) + 1.0) / 2.0;
}

double lopez_bound(int m, double u_max) noexcept {
  assert(u_max > 0.0 && u_max <= 1.0);
  const double beta = std::floor(1.0 / u_max);
  return (beta * static_cast<double>(m) + 1.0) / (beta + 1.0);
}

double simple_partition_bound(int m, double u_max) noexcept {
  return static_cast<double>(m) - (static_cast<double>(m) - 1.0) * u_max;
}

}  // namespace pfair
